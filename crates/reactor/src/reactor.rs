//! The epoll event loop and per-connection state machine.
//!
//! One reactor thread owns every accepted socket. Readiness events drive
//! a per-connection state machine (hello → ready → closing) over the
//! incremental [`FrameDecoder`]; complete requests are handed to
//! [`ZltpServer::submit_get`] — which routes DPF queries into the §5.1
//! batcher exactly as the blocking path does — and answers come back on a
//! completion channel paired with a wakeup pipe. Engine work for
//! unbatched modes runs on a small worker pool so the event loop never
//! performs a scan.
//!
//! Write backpressure: encoded response frames queue per connection; the
//! reactor writes as far as the socket allows and re-arms `EPOLLOUT` for
//! the rest. A connection whose queue exceeds the configured cap stops
//! being read (its `EPOLLIN` interest is dropped) until the peer drains
//! it — a slow reader cannot balloon server memory.

use crate::sys::{Epoll, EpollEvent, WakePipe, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::ReactorConfig;
use crossbeam::channel::{unbounded, Receiver, Sender};
use lightweb_core::config::Mode;
use lightweb_core::server::{error_code, Completion, HelloOutcome, SessionTicket, Submitted};
use lightweb_core::transport::{encode_frame, tune_zltp_socket, FrameDecoder};
use lightweb_core::wire::Message;
use lightweb_core::ZltpServer;
use lightweb_telemetry::trace::TraceContext;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAKE_TOKEN: u64 = 0;
const LISTEN_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const READ_BUF_LEN: usize = 64 * 1024;

/// Mirror of the core server's session-error accounting (same counter
/// and event names, so `/metrics` aggregates across io models).
fn log_session_error(stage: &str, err: &str) {
    lightweb_telemetry::counter!("zltp.session.errors").inc();
    lightweb_telemetry::events::emit(
        "zltp.session.error",
        &[
            ("stage", lightweb_telemetry::events::Field::Str(stage)),
            ("error", lightweb_telemetry::events::Field::Str(err)),
        ],
    );
}

/// A finished answer travelling back to the reactor thread.
struct Done {
    token: u64,
    msg: Message,
    /// Tear the session down after flushing `msg` (fatal engine errors).
    close_after: bool,
}

#[derive(Clone, Copy)]
enum SessionState {
    /// Waiting for the `ClientHello`.
    AwaitHello,
    /// Hello accepted; serving requests in this mode.
    Ready(Mode),
    /// Winding down: flush the queue, then close. `close_queued` is
    /// whether the final frame (`Close` or a hello-rejection error) has
    /// been queued yet — it is deferred while answers are in flight so
    /// responses precede the `Close` on the wire.
    Closing { close_queued: bool },
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded frames awaiting socket capacity; `wq_head` is the write
    /// offset into the front frame.
    wq: VecDeque<Vec<u8>>,
    wq_head: usize,
    wq_bytes: usize,
    state: SessionState,
    /// Last wire activity (bytes read, or a response queued) — the
    /// idle-reaping clock.
    last_activity: Instant,
    created_at: Instant,
    /// Requests submitted whose completions have not yet come back.
    inflight: usize,
    /// Currently-armed epoll interest, to skip redundant `EPOLL_CTL_MOD`s.
    interest: u32,
    /// Holds the open-connections gauge up; dropped on teardown.
    _ticket: SessionTicket,
}

impl Conn {
    fn closing(&self) -> bool {
        matches!(self.state, SessionState::Closing { .. })
    }
}

struct Reactor {
    server: ZltpServer,
    listener: TcpListener,
    epoll: Epoll,
    wake: Arc<WakePipe>,
    done_tx: Sender<Done>,
    done_rx: Receiver<Done>,
    work_tx: Sender<Box<dyn FnOnce() + Send>>,
    cfg: ReactorConfig,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    rbuf: Vec<u8>,
}

/// Start the reactor: registers the listener and wakeup pipe with a
/// fresh epoll instance (errors surface here, at bind time), spawns the
/// engine worker pool, and returns the event-loop thread's handle.
pub(crate) fn spawn(
    server: ZltpServer,
    listener: TcpListener,
    cfg: ReactorConfig,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let wake = Arc::new(WakePipe::new()?);
    epoll.add(wake.read_fd(), WAKE_TOKEN, EPOLLIN)?;
    epoll.add(listener.as_raw_fd(), LISTEN_TOKEN, EPOLLIN)?;
    let (done_tx, done_rx) = unbounded();
    let (work_tx, work_rx) = unbounded::<Box<dyn FnOnce() + Send>>();
    for i in 0..cfg.workers {
        let rx = work_rx.clone();
        std::thread::Builder::new()
            .name(format!("zltp-reactor-worker-{i}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            })?;
    }
    let reactor = Reactor {
        server,
        listener,
        epoll,
        wake,
        done_tx,
        done_rx,
        work_tx,
        cfg,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        rbuf: vec![0u8; READ_BUF_LEN],
    };
    std::thread::Builder::new()
        .name("zltp-reactor".into())
        .spawn(move || reactor.run())
}

impl Reactor {
    fn run(mut self) {
        let registry = lightweb_telemetry::registry();
        let wait_hist = registry.histogram("reactor.epoll.wait.ns");
        let dispatch_hist = registry.histogram("reactor.dispatch.ns");
        let batch_hist = registry.histogram("reactor.ready.batch");
        let open_gauge = registry.gauge("reactor.sessions.open");
        let idle_gauge = registry.gauge("reactor.sessions.idle");
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 512];
        let mut last_sweep = Instant::now();
        loop {
            if self.server.is_shutting_down() {
                self.shutdown_all();
                open_gauge.set(0);
                idle_gauge.set(0);
                return;
            }
            // Cap the wait so shutdown and the reap sweep are observed
            // even on a completely idle process.
            let timeout = self.cfg.sweep_interval.min(Duration::from_millis(200));
            let t0 = Instant::now();
            let n = match self
                .epoll
                .wait(&mut events, timeout.as_millis().max(1) as i32)
            {
                Ok(n) => n,
                Err(e) => {
                    log_session_error("epoll-wait", &e.to_string());
                    return;
                }
            };
            wait_hist.record(t0.elapsed().as_nanos() as u64);
            if n > 0 {
                batch_hist.record(n as u64);
            }
            let t1 = Instant::now();
            {
                let _prof = lightweb_telemetry::profile::Scope::enter("reactor.dispatch");
                for ev in events.iter().take(n) {
                    // Copy out of the (possibly packed) kernel struct.
                    let (bits, token) = (ev.events, ev.data);
                    match token {
                        WAKE_TOKEN => self.wake.drain(),
                        LISTEN_TOKEN => self.accept_all(),
                        token => self.handle_conn_event(token, bits),
                    }
                }
                // Completions may have landed regardless of which event
                // woke us (or while we were dispatching).
                self.drain_done();
            }
            if n > 0 {
                dispatch_hist.record(t1.elapsed().as_nanos() as u64);
            }
            if last_sweep.elapsed() >= self.cfg.sweep_interval {
                last_sweep = Instant::now();
                self.sweep_idle(&idle_gauge);
            }
            open_gauge.set(self.conns.len() as i64);
        }
    }

    // ------------------------------------------------------------------
    // Accept
    // ------------------------------------------------------------------

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    log_session_error("reactor-accept", &e.to_string());
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        // A blocking socket would wedge the whole event loop on its
        // first partial read; refuse the connection instead.
        if let Err(e) = stream.set_nonblocking(true) {
            log_session_error("reactor-set-nonblocking", &e.to_string());
            return;
        }
        tune_zltp_socket(&stream, "reactor-accept");
        let token = self.next_token;
        self.next_token += 1;
        let interest = EPOLLIN | EPOLLRDHUP;
        if let Err(e) = self.epoll.add(stream.as_raw_fd(), token, interest) {
            log_session_error("reactor-epoll-add", &e.to_string());
            return;
        }
        lightweb_telemetry::counter!("reactor.sessions.accepted").inc();
        let now = Instant::now();
        self.conns.insert(
            token,
            Conn {
                stream,
                decoder: FrameDecoder::new(),
                wq: VecDeque::new(),
                wq_head: 0,
                wq_bytes: 0,
                state: SessionState::AwaitHello,
                last_activity: now,
                created_at: now,
                inflight: 0,
                interest,
                _ticket: self.server.begin_session(),
            },
        );
    }

    // ------------------------------------------------------------------
    // Socket readiness
    // ------------------------------------------------------------------

    fn handle_conn_event(&mut self, token: u64, bits: u32) {
        if bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0 {
            self.do_read(token);
        }
        if self.conns.contains_key(&token) && bits & EPOLLOUT != 0 {
            self.try_flush(token);
        }
    }

    fn do_read(&mut self, token: u64) {
        let mut buf = std::mem::take(&mut self.rbuf);
        let mut dead: Option<String> = None;
        let mut msgs: Vec<(Message, Option<TraceContext>)> = Vec::new();
        if let Some(conn) = self.conns.get_mut(&token) {
            'read: loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        // Peer hang-up; like the blocking path, this is a
                        // normal session end (any already-buffered
                        // requests are still handled below).
                        dead = Some(String::new());
                        break;
                    }
                    Ok(n) => {
                        lightweb_telemetry::counter!("transport.bytes.recv").add(n as u64);
                        conn.last_activity = Instant::now();
                        conn.decoder.extend(&buf[..n]);
                        loop {
                            match conn.decoder.decode() {
                                Ok(Some(m)) => {
                                    lightweb_telemetry::counter!("transport.frames.recv").inc();
                                    msgs.push(m);
                                }
                                Ok(None) => break,
                                Err(e) => {
                                    dead = Some(e.to_string());
                                    break 'read;
                                }
                            }
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        dead = Some(e.to_string());
                        break;
                    }
                }
            }
        }
        self.rbuf = buf;
        for (msg, wire_ctx) in msgs {
            if !self.conns.contains_key(&token) {
                return;
            }
            self.handle_message(token, msg, wire_ctx);
        }
        if let Some(err) = dead {
            if !err.is_empty() {
                log_session_error("reactor-session", &err);
            }
            self.teardown(token);
        }
    }

    fn try_flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut broken = false;
        while let Some(front) = conn.wq.front() {
            match conn.stream.write(&front[conn.wq_head..]) {
                Ok(0) => {
                    broken = true;
                    break;
                }
                Ok(n) => {
                    conn.wq_head += n;
                    conn.wq_bytes -= n;
                    if conn.wq_head == front.len() {
                        conn.wq.pop_front();
                        conn.wq_head = 0;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    log_session_error("reactor-write", &e.to_string());
                    broken = true;
                    break;
                }
            }
        }
        let finished = matches!(conn.state, SessionState::Closing { close_queued: true })
            && conn.wq.is_empty()
            && conn.inflight == 0;
        if broken || finished {
            self.teardown(token);
        } else {
            self.arm(token);
        }
    }

    /// Re-arm epoll interest from the connection's current queue state:
    /// `EPOLLOUT` while there are bytes to flush, and `EPOLLIN` unless
    /// backpressure kicked in (write queue over the cap) or the session
    /// is closing.
    fn arm(&mut self, token: u64) {
        let (fd, want, current) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut want = 0u32;
            if !conn.closing() && conn.wq_bytes <= self.cfg.max_write_queue {
                want |= EPOLLIN | EPOLLRDHUP;
            }
            if !conn.wq.is_empty() {
                want |= EPOLLOUT;
            }
            (conn.stream.as_raw_fd(), want, conn.interest)
        };
        if want == current {
            return;
        }
        if want & EPOLLIN == 0 && current & EPOLLIN != 0 {
            lightweb_telemetry::counter!("reactor.backpressure.engaged").inc();
        }
        match self.epoll.modify(fd, token, want) {
            Ok(()) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.interest = want;
                }
            }
            Err(e) => {
                log_session_error("reactor-epoll-mod", &e.to_string());
                self.teardown(token);
            }
        }
    }

    // ------------------------------------------------------------------
    // Protocol state machine
    // ------------------------------------------------------------------

    fn handle_message(&mut self, token: u64, msg: Message, wire_ctx: Option<TraceContext>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.state {
            SessionState::AwaitHello => match self.server.negotiate_hello(&msg) {
                HelloOutcome::Accepted { mode, server_hello } => {
                    conn.state = SessionState::Ready(mode);
                    self.queue_message(token, &server_hello);
                }
                HelloOutcome::Rejected { error, reason } => {
                    log_session_error("reactor-hello", &reason.to_string());
                    conn.state = SessionState::Closing { close_queued: true };
                    self.queue_message(token, &error);
                }
            },
            SessionState::Ready(mode) => match msg {
                Message::Get {
                    request_id,
                    payload,
                } => self.submit(token, mode, request_id, payload, wire_ctx),
                Message::LweSetupRequest => {
                    conn.inflight += 1;
                    let server = self.server.clone();
                    let done_tx = self.done_tx.clone();
                    let wake = self.wake.clone();
                    let job = Box::new(move || {
                        let (msg, close_after) = match server.setup_message(mode) {
                            Ok(m) => (m, false),
                            Err(e) => (
                                Message::Error {
                                    code: error_code::ENGINE,
                                    message: e.to_string(),
                                },
                                true,
                            ),
                        };
                        if done_tx
                            .send(Done {
                                token,
                                msg,
                                close_after,
                            })
                            .is_ok()
                        {
                            wake.wake();
                        }
                    });
                    self.run_or_queue(job);
                }
                Message::Close => {
                    if conn.inflight == 0 {
                        conn.state = SessionState::Closing { close_queued: true };
                        self.queue_message(token, &Message::Close);
                    } else {
                        // Defer the Close reply until in-flight answers
                        // have been queued, preserving response order.
                        conn.state = SessionState::Closing {
                            close_queued: false,
                        };
                    }
                }
                other => {
                    let err = Message::Error {
                        code: error_code::STATE,
                        message: format!("unexpected {}", other.name()),
                    };
                    self.queue_message(token, &err);
                }
            },
            // Winding down: the peer's remaining frames are ignored.
            SessionState::Closing { .. } => {}
        }
    }

    fn submit(
        &mut self,
        token: u64,
        mode: Mode,
        request_id: u32,
        payload: Vec<u8>,
        wire_ctx: Option<TraceContext>,
    ) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.inflight += 1;
        let done_tx = self.done_tx.clone();
        let wake = self.wake.clone();
        let complete: Completion = Box::new(move |res| {
            let msg = match res {
                Ok(p) => Message::GetResponse {
                    request_id,
                    payload: p,
                },
                Err(e) => Message::Error {
                    code: error_code::BAD_QUERY,
                    message: e,
                },
            };
            if done_tx
                .send(Done {
                    token,
                    msg,
                    close_after: false,
                })
                .is_ok()
            {
                wake.wake();
            }
        });
        match self
            .server
            .submit_get(mode, &payload, wire_ctx.as_ref(), complete)
        {
            Submitted::Dispatched => {}
            Submitted::Work(work) => self.run_or_queue(work),
        }
    }

    /// Ship engine work to the worker pool; with no workers (or a dead
    /// pool) it runs inline on the reactor thread — correct, just
    /// latency-hostile, and only reachable in stripped-down test setups.
    fn run_or_queue(&self, job: Box<dyn FnOnce() + Send>) {
        if self.cfg.workers == 0 {
            job();
            return;
        }
        if let Err(err) = self.work_tx.send(job) {
            (err.0)();
        }
    }

    // ------------------------------------------------------------------
    // Completions
    // ------------------------------------------------------------------

    fn drain_done(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            let deferred_close = {
                let Some(conn) = self.conns.get_mut(&done.token) else {
                    // Session died while its answer was in flight; the
                    // answer has nowhere to go.
                    continue;
                };
                conn.inflight = conn.inflight.saturating_sub(1);
                conn.last_activity = Instant::now();
                matches!(
                    conn.state,
                    SessionState::Closing {
                        close_queued: false
                    }
                ) && conn.inflight == 0
            };
            self.queue_message(done.token, &done.msg);
            if done.close_after {
                // Fatal engine error: flush the error frame and die.
                if let Some(conn) = self.conns.get_mut(&done.token) {
                    conn.state = SessionState::Closing { close_queued: true };
                }
                self.try_flush(done.token);
            } else if deferred_close {
                // The last in-flight answer just went out; now send the
                // Close reply the peer asked for.
                if let Some(conn) = self.conns.get_mut(&done.token) {
                    conn.state = SessionState::Closing { close_queued: true };
                }
                self.queue_message(done.token, &Message::Close);
            }
        }
    }

    /// Encode and queue one frame, then flush as far as the socket
    /// allows. Byte/frame counters are bumped at queue time, mirroring
    /// `FramedConn`'s count-before-write settle guarantee.
    fn queue_message(&mut self, token: u64, msg: &Message) {
        let wire = match encode_frame(msg, None) {
            Ok(w) => w,
            Err(e) => {
                log_session_error("reactor-encode", &e.to_string());
                self.teardown(token);
                return;
            }
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        lightweb_telemetry::counter!("transport.bytes.sent").add(wire.len() as u64);
        lightweb_telemetry::counter!("transport.frames.sent").inc();
        conn.wq_bytes += wire.len();
        conn.wq.push_back(wire);
        conn.last_activity = Instant::now();
        self.try_flush(token);
    }

    // ------------------------------------------------------------------
    // Idle reaping, teardown, shutdown
    // ------------------------------------------------------------------

    fn sweep_idle(&mut self, idle_gauge: &lightweb_telemetry::Gauge) {
        let now = Instant::now();
        let mut idle = 0i64;
        let mut reap = Vec::new();
        for (token, conn) in &self.conns {
            if conn.inflight > 0 {
                continue;
            }
            let quiet = now.duration_since(conn.last_activity);
            if quiet >= self.cfg.idle_mark {
                idle += 1;
            }
            if quiet >= self.cfg.idle_timeout {
                reap.push(*token);
            }
        }
        idle_gauge.set(idle);
        for token in reap {
            lightweb_telemetry::counter!("reactor.sessions.reaped").inc();
            lightweb_telemetry::events::emit(
                "reactor.session.reaped",
                &[(
                    "idle_ms",
                    lightweb_telemetry::events::Field::U64(self.cfg.idle_timeout.as_millis() as u64),
                )],
            );
            self.teardown(token);
        }
    }

    fn teardown(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            lightweb_telemetry::registry()
                .histogram("zltp.server.session.ns")
                .record(conn.created_at.elapsed().as_nanos() as u64);
            // Dropping `conn` closes the socket and releases the
            // session ticket (open-connections gauge).
        }
    }

    /// Best-effort farewell on shutdown: queue a `Close` to every live
    /// session, give the sockets one flush pass, then drop everything.
    fn shutdown_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                if !conn.closing() {
                    conn.state = SessionState::Closing { close_queued: true };
                    self.queue_message(token, &Message::Close);
                }
            }
        }
        let remaining: Vec<u64> = self.conns.keys().copied().collect();
        for token in remaining {
            self.teardown(token);
        }
    }
}
