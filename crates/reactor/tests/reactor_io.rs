//! End-to-end serving through `lightweb_reactor::serve` under both io
//! models: correctness parity with the blocking path, adversarial
//! framing (trickled partial frames, oversized-frame rejection),
//! pipelined requests, the Close handshake, worker-pool (unbatched
//! engine) answering, and slow-loris idle reaping.

use lightweb_core::config::{IoModel, Mode, ModeSet, ServerConfig};
use lightweb_core::transport::encode_frame;
use lightweb_core::wire::{Message, PROTOCOL_VERSION};
use lightweb_core::{EnclaveClient, TwoServerZltp, ZltpServer};
use lightweb_reactor::{serve, serve_with, ReactorConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn server_on(io_model: IoModel, universe: &str, party: u8, pages: usize) -> ZltpServer {
    let mut cfg = ServerConfig::small(universe, party);
    cfg.blob_len = 64;
    cfg.io_model = io_model;
    let server = ZltpServer::new(cfg).unwrap();
    for i in 0..pages {
        server.publish(&format!("r/{i}"), &[i as u8; 64]).unwrap();
    }
    server
}

fn listen() -> (TcpListener, std::net::SocketAddr) {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap();
    (l, addr)
}

/// The same two-server private-GET exchange must work — with identical
/// answers — whichever io model drives the sockets.
#[test]
fn private_get_parity_across_io_models() {
    for io_model in [IoModel::Threads, IoModel::Reactor] {
        let mut addrs = Vec::new();
        let mut servers = Vec::new();
        for party in 0..2u8 {
            let server = server_on(io_model, "parity", party, 8);
            let (l, addr) = listen();
            serve(&server, l).unwrap();
            addrs.push(addr);
            servers.push(server);
        }
        let mut client = TwoServerZltp::connect(
            TcpStream::connect(addrs[0]).unwrap(),
            TcpStream::connect(addrs[1]).unwrap(),
        )
        .unwrap();
        for i in [0usize, 3, 7] {
            assert_eq!(
                client.private_get(&format!("r/{i}")).unwrap(),
                vec![i as u8; 64],
                "{io_model:?} r/{i}"
            );
        }
        client.close().unwrap();
        for s in &servers {
            s.shutdown();
        }
    }
}

/// Shutting the server down makes the serving thread exit under both
/// models (the satellite fix: a blocking listener can no longer leave
/// shutdown unobserved).
#[test]
fn serving_thread_exits_on_shutdown() {
    for io_model in [IoModel::Threads, IoModel::Reactor] {
        let server = server_on(io_model, "shutdown", 0, 1);
        let (l, _addr) = listen();
        let handle = serve(&server, l).unwrap();
        server.shutdown();
        let t0 = Instant::now();
        handle.join().unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "{io_model:?} serving thread failed to wind down"
        );
    }
}

/// A client that trickles its frames one byte at a time (pathological
/// fragmentation) still completes the hello exchange and a GET against
/// the reactor's incremental decoder.
#[test]
fn reactor_survives_byte_at_a_time_client() {
    let server = server_on(IoModel::Reactor, "trickle", 0, 2);
    let (l, addr) = listen();
    serve(&server, l).unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let hello = encode_frame(
        &Message::ClientHello {
            version: PROTOCOL_VERSION,
            modes: vec![Mode::TwoServerPir.to_wire()],
        },
        None,
    )
    .unwrap();
    for b in &hello {
        stream.write_all(std::slice::from_ref(b)).unwrap();
        stream.flush().unwrap();
    }
    // The ServerHello comes back framed; read the 5-byte header, then
    // the body.
    let mut head = [0u8; 5];
    stream.read_exact(&mut head).unwrap();
    let len = u32::from_be_bytes(head[..4].try_into().unwrap()) as usize;
    assert!(len > 0);
    let mut body = vec![0u8; len - 1];
    stream.read_exact(&mut body).unwrap();

    // A trickled Close handshake completes too.
    let close = encode_frame(&Message::Close, None).unwrap();
    for b in &close {
        stream.write_all(std::slice::from_ref(b)).unwrap();
    }
    stream.read_exact(&mut head).unwrap();
    server.shutdown();
}

/// An oversized frame-length word kills the connection as soon as the
/// header is seen — the server never buffers toward a 1 GiB frame.
#[test]
fn reactor_rejects_oversized_frame_with_teardown() {
    let server = server_on(IoModel::Reactor, "oversize", 0, 1);
    let (l, addr) = listen();
    serve(&server, l).unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Claimed length 1 GiB; only the header arrives.
    stream.write_all(&[0x40, 0, 0, 1, 3]).unwrap();
    let mut buf = [0u8; 16];
    // The reactor tears the session down: EOF (or reset) on read.
    match stream.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("server answered {n} bytes to a hostile frame"),
        Err(_) => {} // connection reset is equally acceptable
    }
    server.shutdown();
}

/// Unbatched (enclave) sessions flow through the reactor's worker pool:
/// `Submitted::Work` closures must execute off the event loop and their
/// completions must find their way back to the right connection.
#[test]
fn reactor_serves_unbatched_enclave_mode() {
    let mut cfg = ServerConfig::small("enclave-reactor", 0);
    cfg.blob_len = 64;
    cfg.modes = ModeSet::new([Mode::Enclave]);
    cfg.io_model = IoModel::Reactor;
    let server = ZltpServer::new(cfg).unwrap();
    for i in 0..4 {
        server
            .publish(&format!("e/{i}"), &[0x50 + i as u8; 64])
            .unwrap();
    }
    let (l, addr) = listen();
    serve(&server, l).unwrap();
    let mut client = EnclaveClient::connect(TcpStream::connect(addr).unwrap()).unwrap();
    for i in 0..4 {
        assert_eq!(
            client.private_get(&format!("e/{i}")).unwrap().unwrap(),
            vec![0x50 + i as u8; 64]
        );
    }
    assert_eq!(client.private_get("e/absent").unwrap(), None);
    server.shutdown();
}

/// Slow-loris defense: a session that completes its hello and then goes
/// silent is reaped once it exceeds the idle timeout — the client
/// observes EOF — and the reap is counted.
#[test]
fn reactor_reaps_idle_sessions() {
    let server = server_on(IoModel::Reactor, "loris", 0, 1);
    let (l, addr) = listen();
    let cfg = ReactorConfig {
        idle_timeout: Duration::from_millis(250),
        idle_mark: Duration::from_millis(50),
        sweep_interval: Duration::from_millis(50),
        ..ReactorConfig::default()
    };
    let before = lightweb_telemetry::registry().snapshot();
    serve_with(&server, l, cfg).unwrap();

    // Complete the hello by hand, then go silent: a textbook slow loris.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let hello = encode_frame(
        &Message::ClientHello {
            version: PROTOCOL_VERSION,
            modes: vec![Mode::TwoServerPir.to_wire()],
        },
        None,
    )
    .unwrap();
    stream.write_all(&hello).unwrap();
    let mut head = [0u8; 5];
    stream.read_exact(&mut head).unwrap();
    let len = u32::from_be_bytes(head[..4].try_into().unwrap()) as usize;
    let mut body = vec![0u8; len - 1];
    stream.read_exact(&mut body).unwrap();

    // Say nothing more. The server must hang up on us.
    let t0 = Instant::now();
    let mut buf = [0u8; 8];
    let n = stream.read(&mut buf);
    assert!(
        matches!(n, Ok(0)) || n.is_err(),
        "expected reap-driven EOF, got {n:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "reap took implausibly long"
    );
    let after = lightweb_telemetry::registry().snapshot();
    assert!(
        after.counter_delta(&before, "reactor.sessions.reaped") > 0,
        "reap not counted"
    );
    server.shutdown();
}

/// Sessions with multiple sequential requests keep working (the state
/// machine returns to Ready between requests), and server stats match
/// across models.
#[test]
fn sequential_requests_and_stats_parity() {
    let mut requests = Vec::new();
    for io_model in [IoModel::Threads, IoModel::Reactor] {
        let mut addrs = Vec::new();
        let mut servers = Vec::new();
        for party in 0..2u8 {
            let server = server_on(io_model, "seqstats", party, 4);
            let (l, addr) = listen();
            serve(&server, l).unwrap();
            addrs.push(addr);
            servers.push(server);
        }
        let mut client = TwoServerZltp::connect(
            TcpStream::connect(addrs[0]).unwrap(),
            TcpStream::connect(addrs[1]).unwrap(),
        )
        .unwrap();
        for round in 0..3 {
            for i in 0..4usize {
                assert_eq!(
                    client.private_get(&format!("r/{i}")).unwrap(),
                    vec![i as u8; 64],
                    "{io_model:?} round {round} r/{i}"
                );
            }
        }
        client.close().unwrap();
        requests.push(servers.iter().map(|s| s.stats().requests).sum::<u64>());
        for s in &servers {
            s.shutdown();
        }
    }
    assert_eq!(
        requests[0], requests[1],
        "request accounting diverged between io models"
    );
}
