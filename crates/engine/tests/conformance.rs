//! Engine conformance suite: one fixture universe, three backends, the same
//! answers.
//!
//! Every backend is driven through the `QueryEngine` trait exactly as the
//! ZLTP server drives it, and the client-side decode for each mode is
//! reproduced here so the comparison happens on *plaintext blobs*, not wire
//! payloads. The whole suite runs at pool sizes 1 and 4 (the sequential
//! and parallel scan paths must be indistinguishable to clients).

use lightweb_crypto::aead::{ChaCha20Poly1305, AEAD_NONCE_LEN};
use lightweb_crypto::SipHash24;
use lightweb_dpf::DpfParams;
use lightweb_engine::{
    EnclaveOramEngine, PreparedQuery, QueryEngine, ScanPool, SingleServerLweEngine,
    TwoServerDpfEngine,
};
use lightweb_pir::lwe::{LweClient, LweParams};
use lightweb_pir::{KeywordMap, TwoServerClient};

const BLOB_LEN: usize = 32;
const DOMAIN_BITS: u32 = 12;
const TERM_BITS: u32 = 7;
const LWE_N: usize = 64;
const HASH_KEY: [u8; 16] = [0x4c; 16];
const ENCLAVE_CAPACITY: u64 = 1024;

/// The fixture universe: three published pages, plus one key that is
/// published and then unpublished (tombstone), plus one never-published key.
const PRESENT: &[(&str, u8)] = &[
    ("nytimes.com/africa", 7),
    ("cnn.com/world", 9),
    ("weather.com/94110", 3),
];
const TOMBSTONE: &str = "old.example/retracted";
const ABSENT: &str = "never.example/published";

fn params() -> DpfParams {
    DpfParams::new(DOMAIN_BITS, TERM_BITS).unwrap()
}

fn blob(fill: u8) -> Vec<u8> {
    vec![fill; BLOB_LEN]
}

/// Publish the fixture into any engine, including the tombstone cycle.
fn seed_fixture(engine: &dyn QueryEngine) {
    for (key, fill) in PRESENT {
        engine.publish(key.as_bytes(), &blob(*fill)).unwrap();
    }
    engine.publish(TOMBSTONE.as_bytes(), &blob(0xEE)).unwrap();
    engine.unpublish(TOMBSTONE.as_bytes()).unwrap();
}

/// The non-colluding pair, sharing one universe.
struct TwoServerPair {
    e0: TwoServerDpfEngine,
    e1: TwoServerDpfEngine,
}

impl TwoServerPair {
    fn new(prefix_bits: u32, threads: usize) -> Self {
        let mk = |party| {
            TwoServerDpfEngine::new(
                params(),
                BLOB_LEN,
                party,
                prefix_bits,
                KeywordMap::new(&HASH_KEY, DOMAIN_BITS),
                ScanPool::new(threads),
            )
            .unwrap()
        };
        let pair = Self {
            e0: mk(0),
            e1: mk(1),
        };
        seed_fixture(&pair.e0);
        seed_fixture(&pair.e1);
        pair
    }

    /// Full client decode: DPF key pair, one answer per party, XOR combine.
    /// The all-zero blob means "not present" (indistinguishable on the wire
    /// by design; the blob encoding above this layer disambiguates).
    fn get(&self, key: &str) -> Option<Vec<u8>> {
        let map = KeywordMap::new(&HASH_KEY, DOMAIN_BITS);
        let client = TwoServerClient::new(params(), BLOB_LEN);
        let query = client.query_slot(map.slot(key.as_bytes()));
        let a0 = {
            let q = self.e0.prepare(&query.key0.to_bytes()).unwrap();
            self.e0.answer(&q, None).unwrap()
        };
        let a1 = {
            let q = self.e1.prepare(&query.key1.to_bytes()).unwrap();
            self.e1.answer(&q, None).unwrap()
        };
        let combined = TwoServerClient::combine(&a0, &a1).unwrap();
        assert_eq!(combined.len(), BLOB_LEN);
        if combined.iter().all(|&b| b == 0) {
            None
        } else {
            Some(combined)
        }
    }
}

/// Full LWE client decode: manifest lookup, Regev query, hint decode.
fn lwe_get(engine: &SingleServerLweEngine, key: &str) -> Option<Vec<u8>> {
    let extra = engine.session_extra().unwrap();
    assert_eq!(extra.len(), 44, "LWE hello extra must be 44 bytes");
    let seed: [u8; 32] = extra[..32].try_into().unwrap();
    let n = u32::from_be_bytes(extra[32..36].try_into().unwrap()) as usize;
    let cols = u64::from_be_bytes(extra[36..44].try_into().unwrap()) as usize;
    let setup = engine.setup().unwrap().expect("LWE engine has setup");

    let h = SipHash24::new(&HASH_KEY).hash(key.as_bytes());
    let index = setup.key_hashes.binary_search(&h).ok()?;
    let client = LweClient::new(LweParams { n }, seed, cols, BLOB_LEN);
    let query = client.query(index);
    let mut payload = Vec::with_capacity(query.payload.len() * 4);
    for v in &query.payload {
        payload.extend_from_slice(&v.to_be_bytes());
    }
    let prepared = engine.prepare(&payload).unwrap();
    let raw = engine.answer(&prepared, None).unwrap();
    let answer: Vec<u32> = raw
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
        .collect();
    Some(client.decode(&query, &setup.hint, &answer).unwrap())
}

/// Full enclave client decode: seal the keyword, open the response,
/// interpret the presence byte.
fn enclave_get(engine: &EnclaveOramEngine, key: &str) -> Option<Vec<u8>> {
    let session_key: [u8; 32] = engine.session_extra().unwrap().try_into().unwrap();
    let aead = ChaCha20Poly1305::new(&session_key);
    let mut nonce = [0u8; AEAD_NONCE_LEN];
    lightweb_crypto::fill_random(&mut nonce);
    let sealed = aead.seal(&nonce, b"zltp-enclave-query", key.as_bytes());
    let mut payload = Vec::with_capacity(AEAD_NONCE_LEN + sealed.len());
    payload.extend_from_slice(&nonce);
    payload.extend_from_slice(&sealed);

    let prepared = engine.prepare(&payload).unwrap();
    let raw = engine.answer(&prepared, None).unwrap();
    let rn: [u8; AEAD_NONCE_LEN] = raw[..AEAD_NONCE_LEN].try_into().unwrap();
    let plain = aead
        .open(&rn, b"zltp-enclave-response", &raw[AEAD_NONCE_LEN..])
        .unwrap();
    assert_eq!(plain.len(), 1 + BLOB_LEN, "fixed-size enclave response");
    (plain[0] == 1).then(|| plain[1..].to_vec())
}

fn lwe_engine() -> SingleServerLweEngine {
    let engine = SingleServerLweEngine::new(BLOB_LEN, LWE_N, HASH_KEY);
    seed_fixture(&engine);
    engine
}

fn enclave_engine() -> EnclaveOramEngine {
    let engine = EnclaveOramEngine::new(ENCLAVE_CAPACITY, BLOB_LEN).unwrap();
    seed_fixture(&engine);
    engine
}

/// The conformance check proper: every backend, probed through its own
/// client decode, produces the same plaintext for present, absent, and
/// tombstoned keys — at pool sizes 1 and 4.
#[test]
fn all_backends_agree_on_fixture() {
    for threads in [1usize, 4] {
        let pair = TwoServerPair::new(0, threads);
        let lwe = lwe_engine();
        let enclave = enclave_engine();

        for (key, fill) in PRESENT {
            let expected = Some(blob(*fill));
            assert_eq!(pair.get(key), expected, "two-server, {key}, {threads}t");
            assert_eq!(lwe_get(&lwe, key), expected, "lwe, {key}, {threads}t");
            assert_eq!(enclave_get(&enclave, key), expected, "enclave, {key}");
        }
        for key in [ABSENT, TOMBSTONE] {
            assert_eq!(pair.get(key), None, "two-server, {key}, {threads}t");
            assert_eq!(lwe_get(&lwe, key), None, "lwe, {key}, {threads}t");
            assert_eq!(enclave_get(&enclave, key), None, "enclave, {key}");
        }
    }
}

/// §5.2 sharded two-server deployments must be client-indistinguishable
/// from the monolithic scan, again at pool sizes 1 and 4.
#[test]
fn sharded_matches_monolithic() {
    for threads in [1usize, 4] {
        let monolithic = TwoServerPair::new(0, threads);
        let sharded = TwoServerPair::new(2, threads);
        for (key, _) in PRESENT {
            assert_eq!(sharded.get(key), monolithic.get(key), "{key}, {threads}t");
        }
        assert_eq!(sharded.get(ABSENT), None, "{threads}t");
    }
}

/// `rebuild` (the bulk restart/recovery path) must land every engine in the
/// same state as incremental publishes.
#[test]
fn rebuild_matches_incremental_publish() {
    let entries: Vec<(Vec<u8>, Vec<u8>)> = PRESENT
        .iter()
        .map(|(k, f)| (k.as_bytes().to_vec(), blob(*f)))
        .collect();

    let pair = TwoServerPair::new(0, 2);
    pair.e0.rebuild(&entries).unwrap();
    pair.e1.rebuild(&entries).unwrap();
    let lwe = lwe_engine();
    lwe.rebuild(&entries).unwrap();
    let enclave = enclave_engine();
    enclave.rebuild(&entries).unwrap();

    for (key, fill) in PRESENT {
        let expected = Some(blob(*fill));
        assert_eq!(pair.get(key), expected, "two-server rebuilt, {key}");
        assert_eq!(lwe_get(&lwe, key), expected, "lwe rebuilt, {key}");
        assert_eq!(
            enclave_get(&enclave, key),
            expected,
            "enclave rebuilt, {key}"
        );
    }
    // The tombstone was not in the rebuild entries: gone everywhere.
    assert_eq!(pair.get(TOMBSTONE), None);
    assert_eq!(lwe_get(&lwe, TOMBSTONE), None);
    assert_eq!(enclave_get(&enclave, TOMBSTONE), None);
}

/// `answer` must be exactly `answer_batch` with a batch of one, and a
/// multi-query batch must equal its per-query answers (the §5.1 batched
/// scan may not change any answer).
#[test]
fn batch_answers_equal_individual_answers() {
    for threads in [1usize, 4] {
        let pair = TwoServerPair::new(0, threads);
        let map = KeywordMap::new(&HASH_KEY, DOMAIN_BITS);
        let client = TwoServerClient::new(params(), BLOB_LEN);
        let queries: Vec<PreparedQuery> = PRESENT
            .iter()
            .map(|(key, _)| {
                let q = client.query_slot(map.slot(key.as_bytes()));
                pair.e0.prepare(&q.key0.to_bytes()).unwrap()
            })
            .collect();
        let batched = pair.e0.answer_batch(&queries, &[]).unwrap();
        assert_eq!(batched.len(), queries.len());
        for (q, batch_answer) in queries.iter().zip(&batched) {
            assert_eq!(
                &pair.e0.answer(q, None).unwrap(),
                batch_answer,
                "{threads}t"
            );
        }
    }
}

/// Cross-mode queries must be rejected as bad queries, not panic.
#[test]
fn engines_reject_foreign_queries() {
    let pair = TwoServerPair::new(0, 1);
    let lwe = lwe_engine();
    let enclave = enclave_engine();

    let keyword = PreparedQuery::Keyword(b"some.example/key".to_vec());
    assert!(pair.e0.answer(&keyword, None).is_err());
    assert!(lwe.answer(&keyword, None).is_err());

    let lwe_query = PreparedQuery::Lwe(vec![0u32; 8]);
    assert!(enclave.answer(&lwe_query, None).is_err());
}

/// Telemetry identity: names and request metrics are per-engine and stable
/// (the server keys dashboards off these strings).
#[test]
fn engine_naming_is_stable() {
    let pair = TwoServerPair::new(0, 1);
    let lwe = lwe_engine();
    let enclave = enclave_engine();
    assert_eq!(pair.e0.name(), "two_server_pir");
    assert_eq!(
        pair.e0.request_metric(),
        "zltp.server.request.two_server_pir.ns"
    );
    assert_eq!(lwe.name(), "single_server_lwe");
    assert_eq!(
        lwe.request_metric(),
        "zltp.server.request.single_server_lwe.ns"
    );
    assert_eq!(enclave.name(), "enclave_oram");
    assert_eq!(enclave.request_metric(), "zltp.server.request.enclave.ns");
}
