//! Query engines: the per-mode private-read backends behind the ZLTP server.
//!
//! The paper's server speaks one protocol over three interchangeable
//! private-read substrates (§2.2): two-server DPF PIR, single-server LWE
//! PIR, and a (simulated) enclave with Path ORAM. This crate defines the
//! [`QueryEngine`] trait those substrates implement and hosts the three
//! backends, so the core server routes requests through `Box<dyn
//! QueryEngine>` instead of hand-rolled per-mode branches.
//!
//! It also owns the [`ScanPool`] — a scoped-thread pool that partitions the
//! record range so the DPF full-domain evaluation and the linear XOR scan
//! (the two halves of per-request server compute, §5.1) run across cores,
//! and the §5.2 sharded deployment, which reuses the same pool.
#![warn(missing_docs)]

pub mod error;
pub mod pool;
pub mod query;
pub mod sharded;
pub mod traits;

mod enclave;
mod lwe;
mod two_server;

pub use enclave::EnclaveOramEngine;
pub use error::EngineError;
pub use lwe::SingleServerLweEngine;
pub use pool::{ScanPool, SCAN_THREADS_ENV};
pub use query::PreparedQuery;
pub use sharded::{DataShard, DeploymentEntries, ShardedDeployment, ShardedQueryStats};
pub use traits::{EngineSetup, QueryEngine};
pub use two_server::TwoServerDpfEngine;
