//! The single-server LWE PIR backend (SimplePIR-style).

use crate::error::EngineError;
use crate::query::PreparedQuery;
use crate::traits::{EngineSetup, QueryEngine};
use lightweb_crypto::SipHash24;
use lightweb_pir::lwe::{LweParams, LweServer};
use lightweb_telemetry::trace::{maybe_child, TraceContext};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Materialized LWE state: the engine plus the manifest that maps sorted
/// key hashes to record indices.
struct LweBackend {
    server: LweServer,
    key_hashes: Vec<u64>,
}

/// Single-server PIR from the learning-with-errors assumption. Publishing
/// is cheap (a map update); the [`LweServer`] — whose hint depends on the
/// whole database — is rebuilt lazily on the next query or session, the
/// same build-on-demand policy the monolithic server used.
pub struct SingleServerLweEngine {
    blob_len: usize,
    lwe_n: usize,
    hash_key: [u8; 16],
    /// Authoritative content for this engine: key -> blob.
    entries: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
    backend: Mutex<Option<LweBackend>>,
    dirty: AtomicBool,
}

impl SingleServerLweEngine {
    /// Create an empty engine. `hash_key` is the universe's keyword-hash
    /// key (the manifest hashes keys with it) and `lwe_n` the secret
    /// dimension.
    pub fn new(blob_len: usize, lwe_n: usize, hash_key: [u8; 16]) -> Self {
        Self {
            blob_len,
            lwe_n,
            hash_key,
            entries: RwLock::new(BTreeMap::new()),
            backend: Mutex::new(None),
            dirty: AtomicBool::new(true),
        }
    }

    fn ensure<R>(&self, f: impl FnOnce(&LweBackend) -> R) -> Result<R, EngineError> {
        let mut guard = self.backend.lock();
        if self.dirty.swap(false, Ordering::SeqCst) || guard.is_none() {
            let entries = self.entries.read();
            let sip = SipHash24::new(&self.hash_key);
            let mut hashed: Vec<(u64, &Vec<u8>)> =
                entries.iter().map(|(k, v)| (sip.hash(k), v)).collect();
            hashed.sort_by_key(|(h, _)| *h);
            let key_hashes: Vec<u64> = hashed.iter().map(|(h, _)| *h).collect();
            let records: Vec<Vec<u8>> = hashed.iter().map(|(_, v)| (*v).clone()).collect();
            let server = LweServer::new(LweParams { n: self.lwe_n }, self.blob_len, records)
                .map_err(EngineError::backend)?;
            *guard = Some(LweBackend { server, key_hashes });
        }
        Ok(f(guard.as_ref().expect("just materialized")))
    }
}

impl QueryEngine for SingleServerLweEngine {
    fn name(&self) -> &'static str {
        "single_server_lwe"
    }

    fn request_metric(&self) -> &'static str {
        "zltp.server.request.single_server_lwe.ns"
    }

    fn prepare(&self, payload: &[u8]) -> Result<PreparedQuery, EngineError> {
        if !payload.len().is_multiple_of(4) {
            return Err(EngineError::BadQuery("LWE query not a u32 vector".into()));
        }
        let query: Vec<u32> = payload
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
            .collect();
        Ok(PreparedQuery::Lwe(query))
    }

    fn answer_batch(
        &self,
        queries: &[PreparedQuery],
        ctxs: &[Option<TraceContext>],
    ) -> Result<Vec<Vec<u8>>, EngineError> {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let _span = maybe_child(ctxs.get(i).and_then(|c| c.as_ref()), "engine.lwe.answer");
                let query = match q {
                    PreparedQuery::Lwe(v) => v,
                    other => {
                        return Err(EngineError::BadQuery(format!(
                            "LWE PIR cannot answer a {} query",
                            other.kind()
                        )))
                    }
                };
                let ans = self
                    .ensure(|b| b.server.answer(query))?
                    .map_err(EngineError::bad_query)?;
                let mut out = Vec::with_capacity(ans.len() * 4);
                for v in ans {
                    out.extend_from_slice(&v.to_be_bytes());
                }
                Ok(out)
            })
            .collect()
    }

    fn publish(&self, key: &[u8], blob: &[u8]) -> Result<(), EngineError> {
        self.entries.write().insert(key.to_vec(), blob.to_vec());
        self.dirty.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn unpublish(&self, key: &[u8]) -> Result<(), EngineError> {
        self.entries.write().remove(key);
        self.dirty.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn rebuild(&self, entries: &[(Vec<u8>, Vec<u8>)]) -> Result<(), EngineError> {
        *self.entries.write() = entries.iter().cloned().collect();
        self.dirty.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn session_extra(&self) -> Result<Vec<u8>, EngineError> {
        self.ensure(|b| {
            let mut e = Vec::with_capacity(32 + 4 + 8);
            e.extend_from_slice(&b.server.public_seed());
            e.extend_from_slice(&(self.lwe_n as u32).to_be_bytes());
            e.extend_from_slice(&(b.server.cols() as u64).to_be_bytes());
            e
        })
    }

    fn setup(&self) -> Result<Option<EngineSetup>, EngineError> {
        self.ensure(|b| {
            Some(EngineSetup {
                key_hashes: b.key_hashes.clone(),
                hint: b.server.hint().to_vec(),
            })
        })
    }
}
