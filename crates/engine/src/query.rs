//! The parsed, validated form of a private-GET payload.

use lightweb_dpf::DpfKey;

/// A query after [`QueryEngine::prepare`](crate::QueryEngine::prepare):
/// the mode-specific payload decoded and validated, ready to answer. Keeping
/// this a plain enum (rather than a per-engine associated type) keeps the
/// trait dyn-compatible so servers can hold `Box<dyn QueryEngine>` per mode.
#[derive(Clone, Debug)]
pub enum PreparedQuery {
    /// A DPF key share for the two-server PIR scan.
    Dpf(DpfKey),
    /// An LWE query vector (one `u32` per database column).
    Lwe(Vec<u32>),
    /// A keyword that arrived sealed to the enclave, already opened.
    Keyword(Vec<u8>),
}

impl PreparedQuery {
    /// Short kind tag for error messages and telemetry labels.
    pub fn kind(&self) -> &'static str {
        match self {
            PreparedQuery::Dpf(_) => "dpf",
            PreparedQuery::Lwe(_) => "lwe",
            PreparedQuery::Keyword(_) => "keyword",
        }
    }
}
