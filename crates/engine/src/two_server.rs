//! The two-server DPF PIR backend — the paper's prototype mode.

use crate::error::EngineError;
use crate::pool::ScanPool;
use crate::query::PreparedQuery;
use crate::sharded::ShardedDeployment;
use crate::traits::QueryEngine;
use lightweb_dpf::{BitMatrix, DpfKey, DpfParams};
use lightweb_pir::{KeywordMap, PirError, PirServer};
use lightweb_telemetry::trace::{maybe_child, record_span_ctx, TraceContext};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

fn pir_error(e: PirError) -> EngineError {
    match e {
        PirError::ParamsMismatch => EngineError::BadQuery("DPF parameters mismatch".into()),
        other => EngineError::backend(other),
    }
}

/// One logical server of the non-colluding pair: the slot-indexed record
/// store, the full-domain DPF evaluation, and the XOR scan — all driven
/// through a [`ScanPool`] so both halves of the per-request cost (§5.1)
/// scale with cores. When built with `shard_prefix_bits > 0` the engine
/// serves queries through the §5.2 front-end split instead, with the
/// shards distributed across the same pool.
pub struct TwoServerDpfEngine {
    params: DpfParams,
    record_len: usize,
    party: u8,
    prefix_bits: u32,
    keyword_map: KeywordMap,
    pool: ScanPool,
    pir: RwLock<PirServer>,
    /// Sharded view (when `prefix_bits > 0`), rebuilt lazily from the
    /// monolithic store after changes.
    sharded: Mutex<Option<ShardedDeployment>>,
    sharded_dirty: AtomicBool,
}

impl TwoServerDpfEngine {
    /// Create an empty engine. `prefix_bits > 0` enables the sharded
    /// deployment path with `2^prefix_bits` shards.
    pub fn new(
        params: DpfParams,
        record_len: usize,
        party: u8,
        prefix_bits: u32,
        keyword_map: KeywordMap,
        pool: ScanPool,
    ) -> Result<Self, EngineError> {
        if prefix_bits > 0
            && (prefix_bits >= params.tree_depth() || params.domain_bits() - prefix_bits < 3)
        {
            return Err(EngineError::Backend(format!(
                "shard_prefix_bits {prefix_bits} invalid for domain {}",
                params.domain_bits()
            )));
        }
        Ok(Self {
            params,
            record_len,
            party,
            prefix_bits,
            keyword_map,
            pool,
            pir: RwLock::new(PirServer::new(params, record_len)),
            sharded: Mutex::new(None),
            sharded_dirty: AtomicBool::new(true),
        })
    }

    /// The pool this engine scans and evaluates on.
    pub fn pool(&self) -> &ScanPool {
        &self.pool
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.pir.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.pir.read().is_empty()
    }

    fn expect_keys(queries: &[PreparedQuery]) -> Result<Vec<&DpfKey>, EngineError> {
        queries
            .iter()
            .map(|q| match q {
                PreparedQuery::Dpf(key) => Ok(key),
                other => Err(EngineError::BadQuery(format!(
                    "two-server PIR cannot answer a {} query",
                    other.kind()
                ))),
            })
            .collect()
    }

    /// Rebuild the sharded view from the monolithic store if stale, then
    /// answer through it on the pool.
    fn answer_sharded(
        &self,
        key: &DpfKey,
        ctx: Option<&TraceContext>,
    ) -> Result<Vec<u8>, EngineError> {
        let mut guard = self.sharded.lock();
        if self.sharded_dirty.swap(false, Ordering::SeqCst) || guard.is_none() {
            let entries: Vec<(u64, Vec<u8>)> = {
                let pir = self.pir.read();
                pir.iter().map(|(slot, rec)| (slot, rec.to_vec())).collect()
            };
            *guard = Some(ShardedDeployment::from_entries(
                self.params,
                self.prefix_bits,
                self.record_len,
                entries,
            )?);
        }
        let dep = guard.as_ref().expect("just materialized");
        dep.answer_with_pool_traced(key, &self.pool, ctx)
    }
}

impl QueryEngine for TwoServerDpfEngine {
    fn name(&self) -> &'static str {
        "two_server_pir"
    }

    fn request_metric(&self) -> &'static str {
        "zltp.server.request.two_server_pir.ns"
    }

    fn prepare(&self, payload: &[u8]) -> Result<PreparedQuery, EngineError> {
        let key = DpfKey::from_bytes(payload).map_err(EngineError::bad_query)?;
        if key.params() != self.params {
            return Err(EngineError::BadQuery("DPF parameters mismatch".into()));
        }
        Ok(PreparedQuery::Dpf(key))
    }

    fn answer_batch(
        &self,
        queries: &[PreparedQuery],
        ctxs: &[Option<TraceContext>],
    ) -> Result<Vec<Vec<u8>>, EngineError> {
        let keys = Self::expect_keys(queries)?;
        let ctx_of = |i: usize| ctxs.get(i).and_then(|c| c.as_ref());
        if self.prefix_bits > 0 {
            // §5.2: one front-end split + pooled shard scan per query. A
            // real deployment batches within each shard; this path models
            // it with one pass per request.
            return keys
                .into_iter()
                .enumerate()
                .map(|(i, key)| {
                    let span = maybe_child(ctx_of(i), "engine.two_server.answer");
                    let span_ctx = span.as_ref().map(|s| s.ctx());
                    self.answer_sharded(key, span_ctx.as_ref())
                })
                .collect();
        }
        // One packed bit matrix holds every evaluated query — a single
        // allocation for the whole batch, with each key expanded directly
        // into its row.
        let mut matrix = BitMatrix::new(keys.len(), self.params.output_len());
        for (i, key) in keys.iter().enumerate() {
            let eval = maybe_child(ctx_of(i), "engine.two_server.eval");
            let eval_ctx = eval.as_ref().map(|s| s.ctx());
            self.pool
                .eval_full_into_traced(key, matrix.row_mut(i), eval_ctx.as_ref());
        }
        // The scan is one shared pass over the data (§5.1): mint a scan
        // span per traced query up front, time the pass once, and record
        // the same interval under each — so every request's trace shows
        // the scan it amortized into.
        let scan_ctxs: Vec<TraceContext> = (0..keys.len())
            .filter_map(|i| ctx_of(i).map(|c| c.child()))
            .collect();
        let pir = self.pir.read();
        let start = Instant::now();
        let answers = self
            .pool
            .scan_matrix_traced(&pir, &matrix, scan_ctxs.first())
            .map_err(pir_error)?;
        let end = Instant::now();
        for ctx in &scan_ctxs {
            record_span_ctx(ctx, "engine.two_server.scan", start, end);
        }
        Ok(answers)
    }

    fn publish(&self, key: &[u8], blob: &[u8]) -> Result<(), EngineError> {
        let slot = self.keyword_map.slot(key);
        self.pir.write().upsert(slot, blob).map_err(pir_error)?;
        self.sharded_dirty.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn unpublish(&self, key: &[u8]) -> Result<(), EngineError> {
        let slot = self.keyword_map.slot(key);
        self.pir.write().remove(slot);
        self.sharded_dirty.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn rebuild(&self, entries: &[(Vec<u8>, Vec<u8>)]) -> Result<(), EngineError> {
        let slotted: Vec<(u64, Vec<u8>)> = entries
            .iter()
            .map(|(k, v)| (self.keyword_map.slot(k), v.clone()))
            .collect();
        let rebuilt =
            PirServer::from_entries(self.params, self.record_len, slotted).map_err(pir_error)?;
        *self.pir.write() = rebuilt;
        self.sharded_dirty.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn session_extra(&self) -> Result<Vec<u8>, EngineError> {
        Ok(vec![self.party])
    }
}
