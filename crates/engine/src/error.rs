//! Error type shared by every query-engine backend.

/// Every way a query engine can fail. The protocol layer maps these onto
/// wire-level error codes (`BadQuery` → a client fault, `Backend` → an
/// internal engine fault).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The query payload was malformed or built for other parameters.
    BadQuery(String),
    /// The backend itself failed (storage, crypto, capacity).
    Backend(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadQuery(m) => write!(f, "bad query: {m}"),
            EngineError::Backend(m) => write!(f, "engine failure: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// Wrap any backend error into the internal-fault variant.
    pub fn backend(err: impl std::fmt::Display) -> Self {
        EngineError::Backend(err.to_string())
    }

    /// Wrap any parse/validation error into the client-fault variant.
    pub fn bad_query(err: impl std::fmt::Display) -> Self {
        EngineError::BadQuery(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_distinguishes_fault_domains() {
        assert!(EngineError::bad_query("x")
            .to_string()
            .contains("bad query"));
        assert!(EngineError::backend("y").to_string().contains("engine"));
    }
}
