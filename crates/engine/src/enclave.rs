//! The enclave + Path ORAM backend.

use crate::error::EngineError;
use crate::query::PreparedQuery;
use crate::traits::QueryEngine;
use lightweb_crypto::aead::{ChaCha20Poly1305, AEAD_NONCE_LEN};
use lightweb_oram::SimulatedEnclave;
use lightweb_telemetry::trace::{maybe_child, TraceContext};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeSet;

/// Keywords travel sealed over the (simulated) attested channel; the
/// enclave looks them up through Path ORAM so the untrusted memory trace is
/// independent of the key. The engine owns the session key, the AEAD
/// seal/open of both directions, and the presence set (the ORAM store keeps
/// zero-blobs for unpublished keys, so presence must be tracked outside
/// it — previously the server's master map played this role).
pub struct EnclaveOramEngine {
    blob_len: usize,
    capacity: u64,
    /// Simulated attested-channel key handed to clients in the hello.
    session_key: [u8; 32],
    enclave: Mutex<SimulatedEnclave>,
    published: RwLock<BTreeSet<Vec<u8>>>,
}

impl EnclaveOramEngine {
    /// Create an engine able to hold `capacity` blobs of `blob_len` bytes.
    pub fn new(capacity: u64, blob_len: usize) -> Result<Self, EngineError> {
        let enclave = SimulatedEnclave::new(capacity, blob_len).map_err(EngineError::backend)?;
        Ok(Self {
            blob_len,
            capacity,
            session_key: lightweb_crypto::random_key(),
            enclave: Mutex::new(enclave),
            published: RwLock::new(BTreeSet::new()),
        })
    }

    fn aead(&self) -> ChaCha20Poly1305 {
        ChaCha20Poly1305::new(&self.session_key)
    }

    fn answer_one(&self, keyword: &[u8]) -> Result<Vec<u8>, EngineError> {
        // Presence comes from the published set: the ORAM store keeps
        // zero-blobs for unpublished keys.
        let present = self.published.read().contains(keyword);
        let value = self
            .enclave
            .lock()
            .get(keyword)
            .map_err(EngineError::backend)?;
        let mut plain = Vec::with_capacity(1 + self.blob_len);
        plain.push(present as u8);
        match value {
            Some(v) if present => plain.extend_from_slice(&v),
            _ => plain.extend_from_slice(&vec![0u8; self.blob_len]),
        }
        let mut resp_nonce = [0u8; AEAD_NONCE_LEN];
        lightweb_crypto::fill_random(&mut resp_nonce);
        let sealed = self
            .aead()
            .seal(&resp_nonce, b"zltp-enclave-response", &plain);
        let mut out = Vec::with_capacity(AEAD_NONCE_LEN + sealed.len());
        out.extend_from_slice(&resp_nonce);
        out.extend_from_slice(&sealed);
        Ok(out)
    }
}

impl QueryEngine for EnclaveOramEngine {
    fn name(&self) -> &'static str {
        "enclave_oram"
    }

    fn request_metric(&self) -> &'static str {
        "zltp.server.request.enclave.ns"
    }

    fn prepare(&self, payload: &[u8]) -> Result<PreparedQuery, EngineError> {
        // Payload: nonce || AEAD(session_key, nonce, "", key bytes).
        if payload.len() < AEAD_NONCE_LEN {
            return Err(EngineError::BadQuery("sealed query too short".into()));
        }
        let nonce: [u8; AEAD_NONCE_LEN] = payload[..AEAD_NONCE_LEN].try_into().unwrap();
        let keyword = self
            .aead()
            .open(&nonce, b"zltp-enclave-query", &payload[AEAD_NONCE_LEN..])
            .map_err(|_| EngineError::BadQuery("sealed query failed to open".into()))?;
        Ok(PreparedQuery::Keyword(keyword))
    }

    fn answer_batch(
        &self,
        queries: &[PreparedQuery],
        ctxs: &[Option<TraceContext>],
    ) -> Result<Vec<Vec<u8>>, EngineError> {
        // ORAM accesses are inherently sequential (each reshuffles state),
        // so a batch is simply answered in turn.
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let _span = maybe_child(ctxs.get(i).and_then(|c| c.as_ref()), "engine.oram.answer");
                match q {
                    PreparedQuery::Keyword(kw) => self.answer_one(kw),
                    other => Err(EngineError::BadQuery(format!(
                        "enclave cannot answer a {} query",
                        other.kind()
                    ))),
                }
            })
            .collect()
    }

    fn publish(&self, key: &[u8], blob: &[u8]) -> Result<(), EngineError> {
        self.enclave
            .lock()
            .put(key, blob)
            .map_err(EngineError::backend)?;
        self.published.write().insert(key.to_vec());
        Ok(())
    }

    fn unpublish(&self, key: &[u8]) -> Result<(), EngineError> {
        if self.published.write().remove(key) {
            // The enclave store has no delete; overwrite with zeros. The
            // published set is authoritative for presence.
            let zeros = vec![0u8; self.blob_len];
            self.enclave
                .lock()
                .put(key, &zeros)
                .map_err(EngineError::backend)?;
        }
        Ok(())
    }

    fn rebuild(&self, entries: &[(Vec<u8>, Vec<u8>)]) -> Result<(), EngineError> {
        let mut fresh =
            SimulatedEnclave::new(self.capacity, self.blob_len).map_err(EngineError::backend)?;
        fresh
            .load(entries.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))
            .map_err(EngineError::backend)?;
        *self.enclave.lock() = fresh;
        *self.published.write() = entries.iter().map(|(k, _)| k.clone()).collect();
        Ok(())
    }

    fn session_extra(&self) -> Result<Vec<u8>, EngineError> {
        Ok(self.session_key.to_vec())
    }
}
