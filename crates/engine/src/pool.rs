//! The shared scan/eval worker pool.
//!
//! The two dominant per-request server costs (§5.1) — full-domain DPF
//! evaluation and the XOR scan over the data — are both embarrassingly
//! parallel: the DPF tree splits into independent sub-trees (the same
//! prefix split §5.2 uses across machines, here across cores) and the scan
//! splits into disjoint record ranges whose partial accumulators XOR back
//! together. [`ScanPool`] owns that partitioning for every backend: the
//! monolithic scan, the batched scan, and the per-shard scans of a sharded
//! deployment all run through the same pool.
//!
//! Threads are scoped (crossbeam), spawned per call: the pool holds no
//! persistent workers, so a pool is free until used and `threads == 1`
//! degenerates to an inline call on the caller's thread with no spawn at
//! all — which is what the `LIGHTWEB_SCAN_THREADS=1` CI matrix leg pins.

use lightweb_dpf::{BitMatrix, DpfKey};
use lightweb_pir::{PirError, PirServer};
use lightweb_telemetry::trace::{maybe_child, TraceContext};
use std::ops::Range;

/// Environment variable overriding the worker count when a config leaves
/// `scan_threads` at 0 (auto).
pub const SCAN_THREADS_ENV: &str = "LIGHTWEB_SCAN_THREADS";

/// A sizing policy plus the scoped-thread fan-out/fan-in machinery shared
/// by every scan-shaped workload.
#[derive(Clone, Copy, Debug)]
pub struct ScanPool {
    threads: usize,
}

impl ScanPool {
    /// Create a pool with a fixed worker count. `0` means auto: the
    /// `LIGHTWEB_SCAN_THREADS` environment variable if set, otherwise the
    /// machine's available parallelism.
    pub fn new(threads: usize) -> Self {
        let resolved = if threads > 0 {
            threads
        } else {
            std::env::var(SCAN_THREADS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
        };
        lightweb_telemetry::registry()
            .gauge("engine.scan_pool.threads")
            .set(resolved as i64);
        Self { threads: resolved }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Split `0..n` into at most `threads` contiguous chunks and run `f`
    /// on each, in parallel when more than one chunk results. Results come
    /// back in range order. With one chunk (one thread, or tiny `n`) `f`
    /// runs inline on the caller's thread.
    pub fn map_ranges<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let workers = self.threads.min(n).max(1);
        if workers <= 1 {
            return vec![f(0..n)];
        }
        let chunk = n.div_ceil(workers);
        let ranges: Vec<Range<usize>> = (0..workers)
            .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
            .collect();
        let f = &f;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| scope.spawn(move |_| f(r)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan pool worker"))
                .collect()
        })
        .expect("scan pool scope")
    }

    /// Full-domain DPF evaluation, parallelized by splitting the tree at a
    /// prefix (exactly the §5.2 front-end split, applied across cores):
    /// each worker expands a run of sub-trees into its slice of the packed
    /// output. Falls back to the serial evaluation when the pool has one
    /// thread or the domain is too small to split byte-aligned.
    pub fn eval_full(&self, key: &DpfKey) -> Vec<u8> {
        self.eval_full_traced(key, None)
    }

    /// [`ScanPool::eval_full`] with per-partition trace spans
    /// (`engine.pool.partition`) recorded as children of `ctx`.
    pub fn eval_full_traced(&self, key: &DpfKey, ctx: Option<&TraceContext>) -> Vec<u8> {
        let mut out = vec![0u8; key.params().output_len()];
        self.eval_full_into_traced(key, &mut out, ctx);
        out
    }

    /// Full-domain evaluation straight into a caller-owned buffer (e.g. a
    /// [`BitMatrix`] row): workers write their sub-tree runs into disjoint
    /// slices of `out`, so the parallel path allocates nothing per call.
    /// `out` must be exactly `output_len()` bytes.
    pub fn eval_full_into_traced(&self, key: &DpfKey, out: &mut [u8], ctx: Option<&TraceContext>) {
        let _eval = lightweb_telemetry::span!("pir.eval.ns");
        let params = key.params();
        assert_eq!(
            out.len(),
            params.output_len(),
            "output buffer must be exactly output_len() bytes"
        );
        // Deepest split that (a) yields >= one sub-tree per worker,
        // (b) stays above the terminal levels, (c) keeps every shard's
        // output byte-aligned.
        let mut prefix_bits = 0u32;
        while (1usize << (prefix_bits + 1)) <= self.threads
            && prefix_bits + 1 < params.tree_depth()
            && params.domain_bits() - (prefix_bits + 1) >= 3
        {
            prefix_bits += 1;
        }
        if self.threads <= 1 || prefix_bits == 0 {
            key.eval_full_into(out);
            return;
        }
        let nodes = key.eval_prefix(prefix_bits);
        let shard_key = key.shard_key(prefix_bits);
        let sub_len = shard_key.shard_output_len();
        let workers = self.threads.min(nodes.len()).max(1);
        let chunk = nodes.len().div_ceil(workers);
        let shard_key = &shard_key;
        crossbeam::thread::scope(|scope| {
            for (node_run, out_run) in nodes.chunks(chunk).zip(out.chunks_mut(chunk * sub_len)) {
                scope.spawn(move |_| {
                    let _part = maybe_child(ctx, "engine.pool.partition");
                    // Workers run on scoped threads with empty profile
                    // stacks, so an explicit scope is the only thing
                    // attributing their CPU when the request is untraced.
                    let _prof =
                        lightweb_telemetry::profile::Scope::enter("engine.pool.eval.worker");
                    for (node, sub_out) in node_run.iter().zip(out_run.chunks_mut(sub_len)) {
                        shard_key.eval(node, sub_out);
                    }
                });
            }
        })
        .expect("eval pool scope");
    }

    /// Parallel XOR scan: partition the record range, scan chunks on the
    /// pool, XOR-reduce the partial accumulators. Identical output to
    /// [`PirServer::scan`].
    pub fn scan(&self, server: &PirServer, bits: &[u8]) -> Result<Vec<u8>, PirError> {
        self.scan_traced(server, bits, None)
    }

    /// [`ScanPool::scan`] with per-partition trace spans
    /// (`engine.pool.partition`) recorded as children of `ctx`.
    pub fn scan_traced(
        &self,
        server: &PirServer,
        bits: &[u8],
        ctx: Option<&TraceContext>,
    ) -> Result<Vec<u8>, PirError> {
        if bits.len() != server.params().output_len() {
            return Err(PirError::ParamsMismatch);
        }
        let _scan = lightweb_telemetry::span!("pir.scan.ns");
        let partials = self.map_ranges(server.len(), |range| {
            let _part = maybe_child(ctx, "engine.pool.partition");
            let _prof = lightweb_telemetry::profile::Scope::enter("engine.pool.scan.worker");
            server.scan_range(range, bits)
        });
        let mut acc = vec![0u8; server.record_len()];
        for partial in partials {
            lightweb_crypto::xor_in_place(&mut acc, &partial);
        }
        Ok(acc)
    }

    /// Parallel batched scan (§5.1): one pass over the data per chunk
    /// answers every query, and per-query partials XOR-reduce across
    /// chunks. Identical output to [`PirServer::scan_batch`].
    pub fn scan_batch(
        &self,
        server: &PirServer,
        bit_vecs: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, PirError> {
        self.scan_batch_traced(server, bit_vecs, None)
    }

    /// [`ScanPool::scan_batch`] with per-partition trace spans
    /// (`engine.pool.partition`) recorded as children of `ctx`. The scan
    /// pass is shared by the whole batch, so one context (typically the
    /// first traced query's scan span) parents every partition.
    pub fn scan_batch_traced(
        &self,
        server: &PirServer,
        bit_vecs: &[Vec<u8>],
        ctx: Option<&TraceContext>,
    ) -> Result<Vec<Vec<u8>>, PirError> {
        if bit_vecs
            .iter()
            .any(|bits| bits.len() != server.params().output_len())
        {
            return Err(PirError::ParamsMismatch);
        }
        let _scan = lightweb_telemetry::span!("pir.scan.ns");
        let partials = self.map_ranges(server.len(), |range| {
            let _part = maybe_child(ctx, "engine.pool.partition");
            let _prof = lightweb_telemetry::profile::Scope::enter("engine.pool.scan.worker");
            server.scan_batch_range(range, bit_vecs)
        });
        let mut accs = vec![vec![0u8; server.record_len()]; bit_vecs.len()];
        for partial in partials {
            for (acc, p) in accs.iter_mut().zip(partial) {
                lightweb_crypto::xor_in_place(acc, &p);
            }
        }
        Ok(accs)
    }

    /// Parallel batched scan over a packed [`BitMatrix`] of evaluated
    /// queries — the allocation-free companion to [`ScanPool::scan_batch`]
    /// used by the batch answer path. Identical output to
    /// [`PirServer::scan_matrix`].
    pub fn scan_matrix(
        &self,
        server: &PirServer,
        matrix: &BitMatrix,
    ) -> Result<Vec<Vec<u8>>, PirError> {
        self.scan_matrix_traced(server, matrix, None)
    }

    /// [`ScanPool::scan_matrix`] with per-partition trace spans
    /// (`engine.pool.partition`) recorded as children of `ctx`.
    pub fn scan_matrix_traced(
        &self,
        server: &PirServer,
        matrix: &BitMatrix,
        ctx: Option<&TraceContext>,
    ) -> Result<Vec<Vec<u8>>, PirError> {
        if matrix.row_bytes() != server.params().output_len() {
            return Err(PirError::ParamsMismatch);
        }
        let _scan = lightweb_telemetry::span!("pir.scan.ns");
        let partials = self.map_ranges(server.len(), |range| {
            let _part = maybe_child(ctx, "engine.pool.partition");
            let _prof = lightweb_telemetry::profile::Scope::enter("engine.pool.scan.worker");
            server.scan_matrix_range(range, matrix)
        });
        let mut accs = vec![vec![0u8; server.record_len()]; matrix.rows()];
        for partial in partials {
            for (acc, p) in accs.iter_mut().zip(partial) {
                lightweb_crypto::xor_in_place(acc, &p);
            }
        }
        Ok(accs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightweb_dpf::{gen, DpfParams};

    fn sample_server(params: DpfParams, n: usize, record_len: usize) -> PirServer {
        let entries = (0..n as u64)
            .map(|i| {
                let slot = (i * 2654435761) % params.domain_size();
                let mut rec = vec![0u8; record_len];
                rec[..8].copy_from_slice(&i.to_le_bytes());
                (slot, rec)
            })
            .collect::<std::collections::BTreeMap<_, _>>()
            .into_iter()
            .collect();
        PirServer::from_entries(params, record_len, entries).unwrap()
    }

    #[test]
    fn map_ranges_covers_everything_in_order() {
        for threads in [1usize, 2, 3, 8] {
            let pool = ScanPool::new(threads);
            for n in [0usize, 1, 5, 16, 17] {
                let parts = pool.map_ranges(n, |r| r.collect::<Vec<usize>>());
                let flat: Vec<usize> = parts.into_iter().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "t={threads} n={n}");
            }
        }
    }

    #[test]
    fn parallel_eval_matches_serial() {
        let params = DpfParams::new(12, 3).unwrap();
        let (k0, k1) = gen(&params, 777);
        for threads in [1usize, 2, 4, 8] {
            let pool = ScanPool::new(threads);
            assert_eq!(pool.eval_full(&k0), k0.eval_full(), "t={threads}");
            assert_eq!(pool.eval_full(&k1), k1.eval_full(), "t={threads}");
        }
    }

    #[test]
    fn parallel_scan_matches_serial() {
        let params = DpfParams::new(11, 2).unwrap();
        let server = sample_server(params, 120, 32);
        let (k0, _) = gen(&params, 42);
        let bits = k0.eval_full();
        let serial = server.scan(&bits).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let pool = ScanPool::new(threads);
            assert_eq!(pool.scan(&server, &bits).unwrap(), serial, "t={threads}");
        }
    }

    #[test]
    fn parallel_batch_scan_matches_serial() {
        let params = DpfParams::new(11, 2).unwrap();
        let server = sample_server(params, 90, 24);
        let bit_vecs: Vec<Vec<u8>> = [3u64, 900, 2000]
            .iter()
            .map(|&slot| gen(&params, slot).0.eval_full())
            .collect();
        let serial = server.scan_batch(&bit_vecs).unwrap();
        for threads in [1usize, 3, 4] {
            let pool = ScanPool::new(threads);
            assert_eq!(
                pool.scan_batch(&server, &bit_vecs).unwrap(),
                serial,
                "t={threads}"
            );
        }
    }

    #[test]
    fn eval_into_matrix_rows_matches_eval_full() {
        let params = DpfParams::new(12, 3).unwrap();
        let keys: Vec<_> = [5u64, 999, 3000]
            .iter()
            .map(|&slot| gen(&params, slot).0)
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = ScanPool::new(threads);
            let mut matrix = BitMatrix::new(keys.len(), params.output_len());
            for (i, key) in keys.iter().enumerate() {
                pool.eval_full_into_traced(key, matrix.row_mut(i), None);
            }
            for (i, key) in keys.iter().enumerate() {
                assert_eq!(
                    matrix.row(i),
                    key.eval_full().as_slice(),
                    "t={threads} k={i}"
                );
            }
        }
    }

    #[test]
    fn parallel_matrix_scan_matches_batch_scan() {
        let params = DpfParams::new(11, 2).unwrap();
        let server = sample_server(params, 90, 24);
        let keys: Vec<_> = [3u64, 900, 2000]
            .iter()
            .map(|&slot| gen(&params, slot).0)
            .collect();
        let bit_vecs: Vec<Vec<u8>> = keys.iter().map(|k| k.eval_full()).collect();
        let matrix = BitMatrix::from_rows(params.output_len(), &bit_vecs).unwrap();
        let serial = server.scan_batch(&bit_vecs).unwrap();
        for threads in [1usize, 3, 4] {
            let pool = ScanPool::new(threads);
            assert_eq!(
                pool.scan_matrix(&server, &matrix).unwrap(),
                serial,
                "t={threads}"
            );
        }
        let wrong = BitMatrix::new(2, params.output_len() + 1);
        assert_eq!(
            ScanPool::new(2).scan_matrix(&server, &wrong).unwrap_err(),
            PirError::ParamsMismatch
        );
    }

    #[test]
    fn pool_rejects_wrong_length_bits() {
        let params = DpfParams::new(10, 2).unwrap();
        let server = sample_server(params, 10, 8);
        let pool = ScanPool::new(4);
        let short = vec![0u8; params.output_len() - 1];
        assert_eq!(
            pool.scan(&server, &short).unwrap_err(),
            PirError::ParamsMismatch
        );
        assert_eq!(
            pool.scan_batch(&server, &[short]).unwrap_err(),
            PirError::ParamsMismatch
        );
    }

    #[test]
    fn explicit_thread_count_wins_over_auto() {
        assert_eq!(ScanPool::new(3).threads(), 3);
        assert!(ScanPool::new(0).threads() >= 1);
    }
}
