//! The `QueryEngine` abstraction every ZLTP mode implements.

use crate::error::EngineError;
use crate::query::PreparedQuery;
use lightweb_telemetry::trace::TraceContext;

/// Offline setup material some engines publish to clients before the first
/// query (today: the LWE manifest + hint downloaded once per database
/// version).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineSetup {
    /// Sorted keyword hashes; a key's record index is its rank here.
    pub key_hashes: Vec<u64>,
    /// The LWE hint matrix, row-major.
    pub hint: Vec<u32>,
}

/// One private-read substrate (paper §2.2): everything a ZLTP server needs
/// to keep a mode's database in sync with published content and answer its
/// queries, behind one dyn-compatible interface.
///
/// All methods take `&self`; engines use interior mutability so one engine
/// instance can serve concurrent sessions, exactly as the server's backend
/// fields did before this trait existed.
pub trait QueryEngine: Send + Sync {
    /// Short engine name (`two_server_pir`, `single_server_lwe`,
    /// `enclave_oram`) used in telemetry labels and error messages.
    fn name(&self) -> &'static str;

    /// The per-engine request-latency histogram
    /// (`zltp.server.request.<mode>.ns`).
    fn request_metric(&self) -> &'static str;

    /// Decode and validate one GET payload into a [`PreparedQuery`].
    fn prepare(&self, payload: &[u8]) -> Result<PreparedQuery, EngineError>;

    /// Answer one prepared query. The default delegates to the batch path
    /// with a batch of one so batching semantics live in exactly one place
    /// per engine.
    ///
    /// `ctx` is the request's trace context, if the caller is tracing it;
    /// engines record their per-phase child spans under it.
    fn answer(
        &self,
        query: &PreparedQuery,
        ctx: Option<&TraceContext>,
    ) -> Result<Vec<u8>, EngineError> {
        let mut answers = self.answer_batch(std::slice::from_ref(query), &[ctx.copied()])?;
        answers
            .pop()
            .ok_or_else(|| EngineError::Backend("batch of one returned no answer".into()))
    }

    /// Answer a batch of prepared queries. Engines whose dominant cost is a
    /// data pass (the DPF scan) amortize it across the batch (§5.1); others
    /// simply answer each query in turn.
    ///
    /// `ctxs` carries one optional trace context per query, positionally.
    /// Engines are lenient: a short (even empty) slice means the missing
    /// queries are untraced, so callers without tracing pass `&[]`.
    fn answer_batch(
        &self,
        queries: &[PreparedQuery],
        ctxs: &[Option<TraceContext>],
    ) -> Result<Vec<Vec<u8>>, EngineError>;

    /// Insert or update one published blob.
    fn publish(&self, key: &[u8], blob: &[u8]) -> Result<(), EngineError>;

    /// Remove one published blob.
    fn unpublish(&self, key: &[u8]) -> Result<(), EngineError>;

    /// Replace the engine's entire database with `entries` (bulk reseed —
    /// the restart/recovery path).
    fn rebuild(&self, entries: &[(Vec<u8>, Vec<u8>)]) -> Result<(), EngineError>;

    /// Mode-specific bytes for the `ServerHello` `extra` field (party id,
    /// LWE public parameters, enclave session key).
    fn session_extra(&self) -> Result<Vec<u8>, EngineError>;

    /// Offline setup material, for engines that have any.
    fn setup(&self) -> Result<Option<EngineSetup>, EngineError> {
        Ok(None)
    }
}
