//! The §5.2 scale-out architecture: a front-end splitting DPF evaluation
//! across data-server shards.
//!
//! To serve a 305 GiB dataset the paper proposes 305 data servers, each
//! holding a 1 GiB slice, plus front-end servers that "process the client's
//! DPF key before sending the DPF key to the data servers": the front-end
//! evaluates the top of the DPF tree once and ships each sub-tree root to
//! the data server owning that slice of the slot domain. Every data server
//! then does exactly the work of the small-domain microbenchmark — which is
//! how the deployment's latency stays pinned to the single-shard number
//! (2.6 s with batching) regardless of total size.
//!
//! [`ShardedDeployment`] reproduces that architecture in one process: the
//! shards are real [`PirServer`]s over disjoint slot ranges, the front-end
//! logic is the real prefix-evaluation split from `lightweb-dpf`, and the
//! combination step XORs the shard answers exactly as the paper's front-end
//! "combines the results". Shards can be driven sequentially (for clean
//! per-shard cost measurements), on a thread per shard (for wall-clock
//! latency), or across a [`ScanPool`](crate::ScanPool)'s workers (how the
//! [`TwoServerDpfEngine`](crate::TwoServerDpfEngine) serves them).

use crate::error::EngineError;
use crate::pool::ScanPool;
use lightweb_dpf::{DpfKey, DpfParams, ShardKey, TreeNode};
use lightweb_pir::{PirError, PirServer};
use lightweb_telemetry::trace::{maybe_child, TraceContext};
use std::path::Path;

/// The raw `(slot, record)` inputs a deployment is built from, as
/// recovered from a state directory.
pub type DeploymentEntries = Vec<(u64, Vec<u8>)>;

/// File name of a persisted deployment inside a state directory.
const DEPLOYMENT_FILE: &str = "deployment.bin";
/// Magic tag of the persisted-deployment format ("LWDP").
const DEPLOYMENT_MAGIC: u32 = 0x4C57_4450;
/// Version of the persisted-deployment format.
const DEPLOYMENT_VERSION: u32 = 1;

/// Per-query accounting from a sharded answer.
#[derive(Clone, Debug, Default)]
pub struct ShardedQueryStats {
    /// Number of shards that participated.
    pub shards: usize,
    /// Records scanned per shard.
    pub records_scanned: Vec<usize>,
    /// Bytes scanned per shard.
    pub bytes_scanned: Vec<usize>,
}

/// A front-end plus `2^prefix_bits` data-server shards.
pub struct ShardedDeployment {
    params: DpfParams,
    prefix_bits: u32,
    record_len: usize,
    shards: Vec<PirServer>,
}

impl ShardedDeployment {
    /// Build a deployment. `prefix_bits` fixes the shard count at
    /// `2^prefix_bits`; entries are routed to shards by the top bits of
    /// their slot.
    pub fn from_entries(
        params: DpfParams,
        prefix_bits: u32,
        record_len: usize,
        entries: Vec<(u64, Vec<u8>)>,
    ) -> Result<Self, EngineError> {
        if prefix_bits >= params.tree_depth() || params.domain_bits() - prefix_bits < 3 {
            return Err(EngineError::Backend(format!(
                "prefix_bits {prefix_bits} invalid for domain {} / tree depth {}",
                params.domain_bits(),
                params.tree_depth()
            )));
        }
        let shard_count = 1usize << prefix_bits;
        let shard_bits = params.domain_bits() - prefix_bits;
        let sub_params =
            DpfParams::new(shard_bits, params.term_bits()).map_err(EngineError::backend)?;
        let mut per_shard: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); shard_count];
        for (slot, rec) in entries {
            if slot >= params.domain_size() {
                return Err(EngineError::Backend(format!("slot {slot} outside domain")));
            }
            let shard = (slot >> shard_bits) as usize;
            let local = slot & ((1u64 << shard_bits) - 1);
            per_shard[shard].push((local, rec));
        }
        let shards = per_shard
            .into_iter()
            .map(|e| PirServer::from_entries(sub_params, record_len, e))
            .collect::<Result<Vec<_>, PirError>>()
            .map_err(EngineError::backend)?;
        Ok(Self {
            params,
            prefix_bits,
            record_len,
            shards,
        })
    }

    /// Persist a deployment's inputs under `state_dir` so
    /// [`ShardedDeployment::from_state_dir`] can rebuild it after a
    /// restart. The file is one checksummed record written atomically, so
    /// a crash mid-write leaves the previous version (or nothing), never
    /// a torn file.
    pub fn persist_entries(
        state_dir: &Path,
        params: DpfParams,
        prefix_bits: u32,
        record_len: usize,
        entries: &[(u64, Vec<u8>)],
    ) -> Result<(), EngineError> {
        use lightweb_store::record::{put_bytes, put_u32, put_u64};
        let _t = lightweb_telemetry::span!("zltp.deployment.persist.ns");
        std::fs::create_dir_all(state_dir).map_err(EngineError::backend)?;
        let mut body = Vec::new();
        put_u32(&mut body, DEPLOYMENT_MAGIC);
        put_u32(&mut body, DEPLOYMENT_VERSION);
        put_u32(&mut body, params.domain_bits());
        put_u32(&mut body, params.term_bits());
        put_u32(&mut body, prefix_bits);
        put_u32(&mut body, record_len as u32);
        put_u64(&mut body, entries.len() as u64);
        for (slot, rec) in entries {
            put_u64(&mut body, *slot);
            put_bytes(&mut body, rec);
        }
        lightweb_telemetry::counter!("zltp.deployment.persist.bytes").add(body.len() as u64);
        lightweb_store::atomic_file::write_checksummed(&state_dir.join(DEPLOYMENT_FILE), &body)
            .map_err(EngineError::backend)
    }

    /// Rebuild a deployment from a state directory written by
    /// [`ShardedDeployment::persist_entries`], together with the raw
    /// entries (callers re-seed clients/manifests from them). Fails
    /// loudly on a missing, torn, or version-skewed file.
    pub fn from_state_dir(state_dir: &Path) -> Result<(Self, DeploymentEntries), EngineError> {
        use lightweb_store::record::{get_bytes, get_u32, get_u64};
        let _t = lightweb_telemetry::span!("zltp.deployment.recover.ns");
        let body = lightweb_store::atomic_file::read_checksummed(&state_dir.join(DEPLOYMENT_FILE))
            .map_err(EngineError::backend)?;
        let corrupt = |e: lightweb_store::StoreError| EngineError::backend(e);
        let mut buf = body.as_slice();
        if get_u32(&mut buf).map_err(corrupt)? != DEPLOYMENT_MAGIC {
            return Err(EngineError::Backend("not a persisted deployment".into()));
        }
        let version = get_u32(&mut buf).map_err(corrupt)?;
        if version != DEPLOYMENT_VERSION {
            return Err(EngineError::Backend(format!(
                "persisted deployment version {version}, expected {DEPLOYMENT_VERSION}"
            )));
        }
        let domain_bits = get_u32(&mut buf).map_err(corrupt)?;
        let term_bits = get_u32(&mut buf).map_err(corrupt)?;
        let prefix_bits = get_u32(&mut buf).map_err(corrupt)?;
        let record_len = get_u32(&mut buf).map_err(corrupt)? as usize;
        let count = get_u64(&mut buf).map_err(corrupt)?;
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let slot = get_u64(&mut buf).map_err(corrupt)?;
            let rec = get_bytes(&mut buf).map_err(corrupt)?;
            entries.push((slot, rec));
        }
        if !buf.is_empty() {
            return Err(EngineError::Backend(
                "trailing bytes in persisted deployment".into(),
            ));
        }
        let params = DpfParams::new(domain_bits, term_bits).map_err(EngineError::backend)?;
        let dep = Self::from_entries(params, prefix_bits, record_len, entries.clone())?;
        Ok((dep, entries))
    }

    /// Number of data-server shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The full-domain DPF parameters queries must use.
    pub fn params(&self) -> DpfParams {
        self.params
    }

    /// Total records across shards.
    pub fn total_records(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Answer one query through the front-end split, driving shards
    /// sequentially. Returns the combined bucket plus accounting.
    pub fn answer(&self, key: &DpfKey) -> Result<(Vec<u8>, ShardedQueryStats), EngineError> {
        let (nodes, shard_key) = self.front_end(key)?;
        let mut acc = vec![0u8; self.record_len];
        let mut stats = ShardedQueryStats {
            shards: self.shards.len(),
            ..Default::default()
        };
        for (shard, node) in self.shards.iter().zip(nodes.iter()) {
            let partial = {
                let _answer = lightweb_telemetry::span!("zltp.shard.answer.ns");
                Self::shard_answer(shard, &shard_key, node)
            };
            let _combine = lightweb_telemetry::span!("zltp.shard.combine.ns");
            lightweb_crypto::xor_in_place(&mut acc, &partial);
            stats.records_scanned.push(shard.len());
            stats.bytes_scanned.push(shard.stored_bytes());
        }
        Ok((acc, stats))
    }

    /// Answer one query with every shard on its own thread — the wall-clock
    /// shape of the real deployment, where shards run on separate machines.
    pub fn answer_parallel(&self, key: &DpfKey) -> Result<Vec<u8>, EngineError> {
        let (nodes, shard_key) = self.front_end(key)?;
        let mut acc = vec![0u8; self.record_len];
        let partials: Vec<Vec<u8>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(nodes.iter())
                .map(|(shard, node)| {
                    let sk = &shard_key;
                    scope.spawn(move |_| {
                        let _answer = lightweb_telemetry::span!("zltp.shard.answer.ns");
                        Self::shard_answer(shard, sk, node)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread"))
                .collect()
        })
        .expect("shard scope");
        let _combine = lightweb_telemetry::span!("zltp.shard.combine.ns");
        for partial in partials {
            lightweb_crypto::xor_in_place(&mut acc, &partial);
        }
        Ok(acc)
    }

    /// Answer one query with the shards distributed across a
    /// [`ScanPool`]'s workers: contiguous runs of shards per worker rather
    /// than a thread per shard, so an in-process deployment with many
    /// shards does not oversubscribe the machine. Identical output to
    /// [`ShardedDeployment::answer`].
    pub fn answer_with_pool(&self, key: &DpfKey, pool: &ScanPool) -> Result<Vec<u8>, EngineError> {
        self.answer_with_pool_traced(key, pool, None)
    }

    /// [`ShardedDeployment::answer_with_pool`] with trace spans: the
    /// front-end split records a `zltp.shard.front_end` child of `ctx`,
    /// and every data-server shard records its own `zltp.shard.answer`
    /// child — the §5.2 front-end→shard hop made visible per request.
    pub fn answer_with_pool_traced(
        &self,
        key: &DpfKey,
        pool: &ScanPool,
        ctx: Option<&TraceContext>,
    ) -> Result<Vec<u8>, EngineError> {
        let (nodes, shard_key) = {
            let _fe_span = maybe_child(ctx, "zltp.shard.front_end");
            self.front_end(key)?
        };
        let partials = pool.map_ranges(self.shards.len(), |range| {
            let mut acc = vec![0u8; self.record_len];
            for i in range {
                let _answer_span = maybe_child(ctx, "zltp.shard.answer");
                let _answer = lightweb_telemetry::span!("zltp.shard.answer.ns");
                let partial = Self::shard_answer(&self.shards[i], &shard_key, &nodes[i]);
                lightweb_crypto::xor_in_place(&mut acc, &partial);
            }
            acc
        });
        let _combine = lightweb_telemetry::span!("zltp.shard.combine.ns");
        let mut acc = vec![0u8; self.record_len];
        for partial in partials {
            lightweb_crypto::xor_in_place(&mut acc, &partial);
        }
        Ok(acc)
    }

    /// The front-end step: validate, evaluate the top of the tree, and
    /// produce the per-shard key material.
    fn front_end(&self, key: &DpfKey) -> Result<(Vec<TreeNode>, ShardKey), EngineError> {
        if key.params() != self.params {
            return Err(EngineError::BadQuery("DPF parameters mismatch".into()));
        }
        let _fe = lightweb_telemetry::span!("zltp.shard.front_end.ns");
        let nodes = key.eval_prefix(self.prefix_bits);
        let shard_key = key.shard_key(self.prefix_bits);
        Ok((nodes, shard_key))
    }

    /// What one data server does: finish the sub-tree evaluation and scan
    /// its slice. Exactly the small-domain per-server work of §5.2.
    fn shard_answer(shard: &PirServer, shard_key: &ShardKey, node: &TreeNode) -> Vec<u8> {
        let mut bits = vec![0u8; shard_key.shard_output_len()];
        shard_key.eval(node, &mut bits);
        shard
            .scan(&bits)
            .expect("shard bit vector sized to shard params")
    }

    /// Answer for a single shard — the per-shard entry point a remote
    /// data server exposes over the wire. `shard` indexes into this
    /// deployment's shard list; `shard_key` and `node` come from the
    /// front-end split of the client's key.
    pub fn answer_shard(
        &self,
        shard: usize,
        shard_key: &ShardKey,
        node: &TreeNode,
    ) -> Result<Vec<u8>, EngineError> {
        let server = self
            .shards
            .get(shard)
            .ok_or_else(|| EngineError::BadQuery(format!("no shard {shard}")))?;
        if shard_key.params() != self.params || shard_key.prefix_bits() != self.prefix_bits {
            return Err(EngineError::BadQuery(
                "shard key parameters mismatch".into(),
            ));
        }
        let _answer = lightweb_telemetry::span!("zltp.shard.answer.ns");
        Ok(Self::shard_answer(server, shard_key, node))
    }
}

/// One data server of a §5.2 deployment, standing alone: it holds only
/// its slice of the database and answers `(ShardKey, TreeNode)` requests
/// from a front-end. This is what a shard *process* hosts when the
/// deployment leaves a single address space — [`ShardedDeployment`]
/// holds all of these in-process; `DataShard` is one of them, buildable
/// from the full entry list without materializing the rest.
pub struct DataShard {
    shard: PirServer,
    params: DpfParams,
    prefix_bits: u32,
    index: usize,
}

impl DataShard {
    /// Build shard `index` of a `2^prefix_bits`-way deployment from the
    /// full entry list; entries outside this shard's slice of the slot
    /// domain are dropped (each shard process feeds the same published
    /// dataset and keeps its own slice).
    pub fn from_entries(
        params: DpfParams,
        prefix_bits: u32,
        index: usize,
        record_len: usize,
        entries: Vec<(u64, Vec<u8>)>,
    ) -> Result<Self, EngineError> {
        if prefix_bits >= params.tree_depth() || params.domain_bits() - prefix_bits < 3 {
            return Err(EngineError::Backend(format!(
                "prefix_bits {prefix_bits} invalid for domain {}",
                params.domain_bits()
            )));
        }
        if index >= (1usize << prefix_bits) {
            return Err(EngineError::Backend(format!(
                "shard index {index} out of range for prefix_bits {prefix_bits}"
            )));
        }
        let shard_bits = params.domain_bits() - prefix_bits;
        let sub_params =
            DpfParams::new(shard_bits, params.term_bits()).map_err(EngineError::backend)?;
        let local: Vec<(u64, Vec<u8>)> = entries
            .into_iter()
            .filter(|(slot, _)| (slot >> shard_bits) as usize == index)
            .map(|(slot, rec)| (slot & ((1u64 << shard_bits) - 1), rec))
            .collect();
        let shard =
            PirServer::from_entries(sub_params, record_len, local).map_err(EngineError::backend)?;
        Ok(Self {
            shard,
            params,
            prefix_bits,
            index,
        })
    }

    /// Which shard of the deployment this is.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Records held by this shard.
    pub fn len(&self) -> usize {
        self.shard.len()
    }

    /// Whether the shard's slice is empty.
    pub fn is_empty(&self) -> bool {
        self.shard.len() == 0
    }

    /// Finish one sub-tree evaluation and scan the slice — the remote
    /// mirror of [`ShardedDeployment::answer_shard`]. Rejects key
    /// material split with the wrong parameters or prefix depth.
    pub fn answer(&self, shard_key: &ShardKey, node: &TreeNode) -> Result<Vec<u8>, EngineError> {
        if shard_key.params() != self.params || shard_key.prefix_bits() != self.prefix_bits {
            return Err(EngineError::BadQuery(
                "shard key parameters mismatch".into(),
            ));
        }
        let _answer = lightweb_telemetry::span!("zltp.shard.answer.ns");
        Ok(ShardedDeployment::shard_answer(
            &self.shard,
            shard_key,
            node,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightweb_dpf::gen;
    use lightweb_pir::TwoServerClient;

    fn entries(n: u64, domain: u64, record_len: usize) -> Vec<(u64, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let slot = (i * 2654435761) % domain;
                let mut rec = vec![0u8; record_len];
                rec[..8].copy_from_slice(&i.to_le_bytes());
                (slot, rec)
            })
            .collect::<std::collections::BTreeMap<_, _>>()
            .into_iter()
            .collect()
    }

    #[test]
    fn sharded_answer_matches_monolithic() {
        let params = DpfParams::new(12, 3).unwrap();
        let es = entries(100, 1 << 12, 32);
        let mono = PirServer::from_entries(params, 32, es.clone()).unwrap();
        for prefix in [1u32, 2, 4] {
            let dep = ShardedDeployment::from_entries(params, prefix, 32, es.clone()).unwrap();
            assert_eq!(dep.shard_count(), 1 << prefix);
            assert_eq!(dep.total_records(), mono.len());
            for &(slot, _) in es.iter().take(5) {
                let (k0, _) = gen(&params, slot);
                let (sharded, stats) = dep.answer(&k0).unwrap();
                assert_eq!(
                    sharded,
                    mono.answer(&k0).unwrap(),
                    "prefix={prefix} slot={slot}"
                );
                assert_eq!(stats.shards, 1 << prefix);
            }
        }
    }

    #[test]
    fn two_server_protocol_over_sharded_deployment() {
        // Full reconstruction through two sharded deployments.
        let params = DpfParams::new(12, 3).unwrap();
        let es = entries(64, 1 << 12, 16);
        let dep0 = ShardedDeployment::from_entries(params, 2, 16, es.clone()).unwrap();
        let dep1 = ShardedDeployment::from_entries(params, 2, 16, es.clone()).unwrap();
        let client = TwoServerClient::new(params, 16);
        for &(slot, ref rec) in es.iter().take(8) {
            let q = client.query_slot(slot);
            let (a0, _) = dep0.answer(&q.key0).unwrap();
            let (a1, _) = dep1.answer(&q.key1).unwrap();
            assert_eq!(&TwoServerClient::combine(&a0, &a1).unwrap(), rec);
        }
    }

    #[test]
    fn parallel_answer_matches_sequential() {
        let params = DpfParams::new(11, 2).unwrap();
        let es = entries(50, 1 << 11, 24);
        let dep = ShardedDeployment::from_entries(params, 3, 24, es.clone()).unwrap();
        let (k0, _) = gen(&params, es[3].0);
        let (seq, _) = dep.answer(&k0).unwrap();
        let par = dep.answer_parallel(&k0).unwrap();
        assert_eq!(seq, par);
        for threads in [1usize, 2, 4] {
            let pooled = dep.answer_with_pool(&k0, &ScanPool::new(threads)).unwrap();
            assert_eq!(seq, pooled, "pool threads={threads}");
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        // With a multiplicative-hash slot spread, shards should each hold
        // some records (no shard starves) — the paper's balanced sharding.
        let params = DpfParams::new(12, 3).unwrap();
        let es = entries(512, 1 << 12, 8);
        let dep = ShardedDeployment::from_entries(params, 3, 8, es).unwrap();
        let (_, stats) = dep.answer(&gen(&params, 0).0).unwrap();
        let nonempty = stats.records_scanned.iter().filter(|&&n| n > 0).count();
        assert_eq!(
            nonempty, 8,
            "records per shard: {:?}",
            stats.records_scanned
        );
    }

    #[test]
    fn standalone_data_shards_reassemble_deployment_answer() {
        let params = DpfParams::new(12, 3).unwrap();
        let es = entries(100, 1 << 12, 32);
        let dep = ShardedDeployment::from_entries(params, 2, 32, es.clone()).unwrap();
        let shards: Vec<DataShard> = (0..4)
            .map(|i| DataShard::from_entries(params, 2, i, 32, es.clone()).unwrap())
            .collect();
        assert_eq!(
            shards.iter().map(|s| s.len()).sum::<usize>(),
            dep.total_records()
        );
        let (k0, _) = gen(&params, es[7].0);
        let nodes = k0.eval_prefix(2);
        let shard_key = k0.shard_key(2);
        let mut acc = vec![0u8; 32];
        for (shard, node) in shards.iter().zip(nodes.iter()) {
            let partial = shard.answer(&shard_key, node).unwrap();
            // The deployment's per-shard entry point agrees byte for byte.
            assert_eq!(
                partial,
                dep.answer_shard(shard.index(), &shard_key, node).unwrap()
            );
            lightweb_crypto::xor_in_place(&mut acc, &partial);
        }
        assert_eq!(acc, dep.answer(&k0).unwrap().0);
    }

    #[test]
    fn data_shard_rejects_mismatched_key_material() {
        let params = DpfParams::new(12, 3).unwrap();
        let shard = DataShard::from_entries(params, 2, 0, 8, vec![]).unwrap();
        let (k0, _) = gen(&params, 0);
        // Wrong prefix depth.
        let wrong = k0.shard_key(3);
        let node = k0.eval_prefix(2)[0];
        assert!(shard.answer(&wrong, &node).is_err());
        // Out-of-range shard index at build time.
        assert!(DataShard::from_entries(params, 2, 4, 8, vec![]).is_err());
    }

    #[test]
    fn invalid_prefix_rejected() {
        let params = DpfParams::new(8, 2).unwrap();
        assert!(ShardedDeployment::from_entries(params, 6, 8, vec![]).is_err());
        assert!(ShardedDeployment::from_entries(params, 7, 8, vec![]).is_err());
    }

    #[test]
    fn wrong_params_query_rejected() {
        let params = DpfParams::new(12, 3).unwrap();
        let dep = ShardedDeployment::from_entries(params, 2, 8, vec![]).unwrap();
        let other = DpfParams::new(10, 3).unwrap();
        let (k, _) = gen(&other, 0);
        assert!(dep.answer(&k).is_err());
    }

    #[test]
    fn persist_and_recover_roundtrip() {
        let dir =
            std::env::temp_dir().join(format!("lightweb-engine-{}-persist", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let params = DpfParams::new(12, 3).unwrap();
        let es = entries(64, 1 << 12, 16);
        ShardedDeployment::persist_entries(&dir, params, 2, 16, &es).unwrap();
        let (dep, recovered) = ShardedDeployment::from_state_dir(&dir).unwrap();
        assert_eq!(recovered, es);
        assert_eq!(dep.shard_count(), 4);
        // The recovered deployment answers exactly like a fresh one.
        let fresh = ShardedDeployment::from_entries(params, 2, 16, es.clone()).unwrap();
        for &(slot, _) in es.iter().take(4) {
            let (k0, _) = gen(&params, slot);
            assert_eq!(dep.answer(&k0).unwrap().0, fresh.answer(&k0).unwrap().0);
        }
    }

    #[test]
    fn recover_detects_corruption_and_absence() {
        let dir =
            std::env::temp_dir().join(format!("lightweb-engine-{}-corrupt", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(ShardedDeployment::from_state_dir(&dir).is_err(), "absent");
        let params = DpfParams::new(12, 3).unwrap();
        ShardedDeployment::persist_entries(&dir, params, 2, 16, &entries(16, 1 << 12, 16)).unwrap();
        let file = dir.join("deployment.bin");
        let mut raw = std::fs::read(&file).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x20;
        std::fs::write(&file, &raw).unwrap();
        assert!(ShardedDeployment::from_state_dir(&dir).is_err(), "torn");
    }

    #[test]
    fn out_of_domain_entry_rejected() {
        let params = DpfParams::new(10, 2).unwrap();
        let err = ShardedDeployment::from_entries(params, 2, 8, vec![(1 << 10, vec![0u8; 8])]);
        assert!(err.is_err());
    }
}
