//! Store error type.

/// Errors raised by the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// On-disk data failed validation in a way recovery must not paper
    /// over: a checksum mismatch in the middle of a log, a segment record
    /// that does not match its reference, an unreadable snapshot with no
    /// older fallback. Recovery is exact-or-fails-loudly; this is the
    /// fails-loudly half.
    Corrupt(String),
    /// A record or snapshot was written by a format version this build
    /// does not understand.
    Version {
        /// Version found on disk.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The caller handed the store something it cannot journal (e.g. a
    /// value longer than the segment record format can address).
    InvalidOp(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::Version { found, expected } => {
                write!(
                    f,
                    "store format version {found} (this build writes {expected})"
                )
            }
            StoreError::InvalidOp(m) => write!(f, "invalid store op: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
