//! Paged blob segment files.
//!
//! Values too large to ride inline in a WAL record are appended to
//! segment files (`segments/seg-<id>.seg`). Each value is framed with the
//! store's standard checksummed record format and the file is then padded
//! to the next page boundary, so every record starts page-aligned — reads
//! touch only whole pages, and a torn final page can never bleed into an
//! earlier record.
//!
//! Segments are immutable once written; the only mutations are appends to
//! the active segment, rotation to a new file, and whole-file deletion
//! during compaction (after a snapshot has inlined every live value, no
//! WAL record references any segment, so all closed segments are dead).
//! Reads go through [`SegmentStore::read`], which validates the record
//! checksum and the reference length and fails loudly on any mismatch.

use crate::error::StoreError;
use crate::ops::BlobRef;
use crate::record::{read_record, write_record, RecordRead, MAX_RECORD_LEN};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default page size: 4 KiB, matching the paper's medium-tier blob.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

fn segment_file_name(id: u32) -> String {
    format!("seg-{id:08}.seg")
}

fn parse_segment_id(name: &str) -> Option<u32> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// The collection of segment files under one store directory.
pub struct SegmentStore {
    dir: PathBuf,
    page_size: usize,
    active_id: u32,
    active: Option<File>,
    active_len: u64,
}

impl SegmentStore {
    /// Open (or create) the segment directory. A fresh active segment is
    /// always started, so a torn tail left by a crash in an older segment
    /// is never appended to.
    pub fn open(dir: &Path, page_size: usize) -> Result<Self, StoreError> {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        fs::create_dir_all(dir)?;
        crate::atomic_file::remove_stale_temps(dir)?;
        let max_id = Self::segment_ids(dir)?.into_iter().max();
        Ok(Self {
            dir: dir.to_path_buf(),
            page_size,
            active_id: max_id.map_or(0, |m| m + 1),
            active: None,
            active_len: 0,
        })
    }

    fn segment_ids(dir: &Path) -> Result<Vec<u32>, StoreError> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(id) = parse_segment_id(&entry?.file_name().to_string_lossy()) {
                ids.push(id);
            }
        }
        Ok(ids)
    }

    fn path_of(&self, id: u32) -> PathBuf {
        self.dir.join(segment_file_name(id))
    }

    /// Append one value to the active segment, fsync it, and return its
    /// reference. The fsync *before* the WAL record is written is what
    /// makes a `PublishData` blob ref safe to replay.
    pub fn append(&mut self, payload: &[u8]) -> Result<BlobRef, StoreError> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(StoreError::InvalidOp(format!(
                "value of {} bytes exceeds the segment record cap",
                payload.len()
            )));
        }
        let _t = lightweb_telemetry::span!("store.segment.append.ns");
        if self.active.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path_of(self.active_id))?;
            self.active_len = file.metadata()?.len();
            self.active = Some(file);
        }
        let offset = self.active_len;
        let mut framed = Vec::with_capacity(payload.len() + 64);
        write_record(&mut framed, payload);
        // Pad to the next page boundary so the following record starts
        // page-aligned.
        let mask = self.page_size as u64 - 1;
        let padded = (framed.len() as u64 + mask) & !mask;
        framed.resize(padded as usize, 0);
        let file = self.active.as_mut().unwrap();
        file.write_all(&framed)?;
        {
            let _s = lightweb_telemetry::span!("store.segment.fsync.ns");
            file.sync_all()?;
        }
        self.active_len += padded;
        lightweb_telemetry::counter!("store.segment.bytes").add(padded);
        lightweb_telemetry::counter!("store.segment.records").inc();
        Ok(BlobRef {
            segment: self.active_id,
            offset,
            len: payload.len() as u32,
        })
    }

    /// Read a value back through its reference, failing loudly if the
    /// record is missing, torn, or does not match the reference.
    pub fn read(&self, r: &BlobRef) -> Result<Vec<u8>, StoreError> {
        let _t = lightweb_telemetry::span!("store.segment.read.ns");
        let path = self.path_of(r.segment);
        let mut file = File::open(&path).map_err(|e| {
            StoreError::Corrupt(format!(
                "segment {} referenced by the WAL is unreadable: {e}",
                path.display()
            ))
        })?;
        file.seek(SeekFrom::Start(r.offset))?;
        let mut framed = vec![0u8; crate::record::RECORD_HEADER_LEN + r.len as usize];
        file.read_exact(&mut framed).map_err(|_| {
            StoreError::Corrupt(format!(
                "segment {} truncated under record at offset {}",
                path.display(),
                r.offset
            ))
        })?;
        match read_record(&framed, 0) {
            RecordRead::Valid { payload, .. } if payload.len() == r.len as usize => Ok(payload),
            RecordRead::Valid { payload, .. } => Err(StoreError::Corrupt(format!(
                "segment record length {} does not match reference {}",
                payload.len(),
                r.len
            ))),
            RecordRead::End | RecordRead::Invalid { .. } => Err(StoreError::Corrupt(format!(
                "segment {} record at offset {} failed validation",
                path.display(),
                r.offset
            ))),
        }
    }

    /// Close the active segment and start a new one. Returns the id every
    /// segment older than which is now closed.
    pub fn rotate(&mut self) -> u32 {
        if self.active.is_some() || self.active_len > 0 {
            self.active = None;
            self.active_len = 0;
            self.active_id += 1;
        }
        self.active_id
    }

    /// Delete every closed segment with id strictly below `id`. Called
    /// after compaction, when no WAL record can reference them.
    pub fn delete_below(&mut self, id: u32) -> Result<usize, StoreError> {
        let mut removed = 0;
        for seg in Self::segment_ids(&self.dir)? {
            if seg < id {
                fs::remove_file(self.path_of(seg))?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Id of the segment new appends go to.
    pub fn active_id(&self) -> u32 {
        self.active_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lightweb-segment-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_read_roundtrip_page_aligned() {
        let dir = scratch("roundtrip");
        let mut s = SegmentStore::open(&dir, 4096).unwrap();
        let a = s.append(&[1u8; 100]).unwrap();
        let b = s.append(&vec![2u8; 5000]).unwrap();
        let c = s.append(b"").unwrap();
        assert_eq!(a.offset % 4096, 0);
        assert_eq!(b.offset, 4096, "first record pads to one page");
        assert_eq!(c.offset % 4096, 0);
        assert_eq!(s.read(&a).unwrap(), vec![1u8; 100]);
        assert_eq!(s.read(&b).unwrap(), vec![2u8; 5000]);
        assert_eq!(s.read(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn reopen_starts_a_fresh_segment() {
        let dir = scratch("reopen");
        let r = {
            let mut s = SegmentStore::open(&dir, 4096).unwrap();
            s.append(b"survives").unwrap()
        };
        let mut s2 = SegmentStore::open(&dir, 4096).unwrap();
        assert!(s2.active_id() > r.segment);
        // Old record still readable through its ref.
        assert_eq!(s2.read(&r).unwrap(), b"survives");
        let r2 = s2.append(b"new").unwrap();
        assert_ne!(r2.segment, r.segment);
    }

    #[test]
    fn corruption_fails_loudly() {
        let dir = scratch("corrupt");
        let mut s = SegmentStore::open(&dir, 4096).unwrap();
        let r = s.append(&vec![7u8; 256]).unwrap();
        let path = dir.join(segment_file_name(r.segment));
        let mut raw = fs::read(&path).unwrap();
        raw[crate::record::RECORD_HEADER_LEN + 10] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        assert!(matches!(s.read(&r), Err(StoreError::Corrupt(_))));
        // A dangling ref (bad segment id) also fails loudly.
        let dangling = BlobRef {
            segment: r.segment + 99,
            offset: 0,
            len: 1,
        };
        assert!(matches!(s.read(&dangling), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn rotation_and_deletion() {
        let dir = scratch("rotate");
        let mut s = SegmentStore::open(&dir, 4096).unwrap();
        let r = s.append(b"old").unwrap();
        let active = s.rotate();
        assert!(active > r.segment);
        assert_eq!(s.delete_below(active).unwrap(), 1);
        assert!(matches!(s.read(&r), Err(StoreError::Corrupt(_))));
    }
}
