//! The on-disk record format shared by the WAL and the segment files.
//!
//! Every durable record travels as
//!
//! ```text
//! | u32 len (BE) | u64 checksum (BE) | payload (len bytes) |
//! ```
//!
//! where the checksum is SipHash-2-4 (from `lightweb-crypto`) over the
//! payload under a fixed key. The checksum is an *integrity* check against
//! torn writes and bit rot, not an authenticity check — anyone with the
//! file can rewrite it; the store's threat model is crashes, not tampering.
//!
//! A record is **valid** iff the full header fits, `len` is within bounds,
//! the full payload fits, and the checksum matches. [`read_record`]
//! distinguishes three outcomes so callers can implement torn-tail
//! truncation (WAL) versus fail-loudly (segments): a valid record, a clean
//! end of input, or an invalid tail.

use crate::error::StoreError;
use lightweb_crypto::SipHash24;

/// Fixed integrity key. Changing it invalidates every store on disk, so it
/// is part of the format (bumping it requires a format-version bump).
const CHECKSUM_KEY: [u8; 16] = *b"lightweb-store/1";

/// Hard cap on one record's payload: 256 MiB, far above any legitimate
/// blob but small enough that a garbage length field cannot drive an
/// unbounded allocation.
pub const MAX_RECORD_LEN: usize = 256 * 1024 * 1024;

/// Bytes of framing around a payload: u32 length + u64 checksum.
pub const RECORD_HEADER_LEN: usize = 4 + 8;

/// Checksum a payload with the store's fixed SipHash-2-4 key.
pub fn checksum(payload: &[u8]) -> u64 {
    SipHash24::new(&CHECKSUM_KEY).hash(payload)
}

/// Frame a payload into `out` as one record.
pub fn write_record(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_RECORD_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&checksum(payload).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of pulling one record off a byte stream.
#[derive(Debug, PartialEq, Eq)]
pub enum RecordRead {
    /// A record passed validation; the payload and the number of bytes
    /// consumed (header + payload).
    Valid {
        /// The record payload.
        payload: Vec<u8>,
        /// Total bytes this record occupied.
        consumed: usize,
    },
    /// Input ended exactly on a record boundary.
    End,
    /// The bytes at this offset are not a valid record: truncated header,
    /// truncated payload, out-of-bounds length, or checksum mismatch.
    /// `reason` says which.
    Invalid {
        /// Human-readable description of the defect.
        reason: String,
    },
}

/// Validate and read the record starting at `buf[offset..]`.
pub fn read_record(buf: &[u8], offset: usize) -> RecordRead {
    let rest = &buf[offset.min(buf.len())..];
    if rest.is_empty() {
        return RecordRead::End;
    }
    if rest.len() < RECORD_HEADER_LEN {
        return RecordRead::Invalid {
            reason: format!(
                "truncated header: {} of {RECORD_HEADER_LEN} bytes",
                rest.len()
            ),
        };
    }
    let len = u32::from_be_bytes(rest[..4].try_into().unwrap()) as usize;
    if len > MAX_RECORD_LEN {
        return RecordRead::Invalid {
            reason: format!("record length {len} exceeds cap {MAX_RECORD_LEN}"),
        };
    }
    let want = u64::from_be_bytes(rest[4..12].try_into().unwrap());
    if rest.len() < RECORD_HEADER_LEN + len {
        return RecordRead::Invalid {
            reason: format!(
                "truncated payload: {} of {len} bytes",
                rest.len() - RECORD_HEADER_LEN
            ),
        };
    }
    let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
    if checksum(payload) != want {
        return RecordRead::Invalid {
            reason: "checksum mismatch".into(),
        };
    }
    RecordRead::Valid {
        payload: payload.to_vec(),
        consumed: RECORD_HEADER_LEN + len,
    }
}

// ---------------------------------------------------------------------
// Little payload-encoding helpers shared by ops, snapshots, and segments.
// All integers are big-endian; strings and byte strings are u32
// length-prefixed.
// ---------------------------------------------------------------------

/// Append a u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Read a u8, advancing the slice.
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, StoreError> {
    let (&b, rest) = buf
        .split_first()
        .ok_or_else(|| StoreError::Corrupt("truncated payload (u8)".into()))?;
    *buf = rest;
    Ok(b)
}

/// Read a u32, advancing the slice.
pub fn get_u32(buf: &mut &[u8]) -> Result<u32, StoreError> {
    if buf.len() < 4 {
        return Err(StoreError::Corrupt("truncated payload (u32)".into()));
    }
    let v = u32::from_be_bytes(buf[..4].try_into().unwrap());
    *buf = &buf[4..];
    Ok(v)
}

/// Read a u64, advancing the slice.
pub fn get_u64(buf: &mut &[u8]) -> Result<u64, StoreError> {
    if buf.len() < 8 {
        return Err(StoreError::Corrupt("truncated payload (u64)".into()));
    }
    let v = u64::from_be_bytes(buf[..8].try_into().unwrap());
    *buf = &buf[8..];
    Ok(v)
}

/// Read a length-prefixed byte string, advancing the slice.
pub fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, StoreError> {
    let n = get_u32(buf)? as usize;
    if buf.len() < n {
        return Err(StoreError::Corrupt(format!(
            "truncated payload (bytes: {n} wanted, {} left)",
            buf.len()
        )));
    }
    let out = buf[..n].to_vec();
    *buf = &buf[n..];
    Ok(out)
}

/// Read a length-prefixed UTF-8 string, advancing the slice.
pub fn get_str(buf: &mut &[u8]) -> Result<String, StoreError> {
    String::from_utf8(get_bytes(buf)?)
        .map_err(|_| StoreError::Corrupt("invalid UTF-8 string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_and_boundaries() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"alpha");
        write_record(&mut buf, b"");
        write_record(&mut buf, &[0xAB; 300]);
        let mut off = 0;
        let mut seen = Vec::new();
        loop {
            match read_record(&buf, off) {
                RecordRead::Valid { payload, consumed } => {
                    seen.push(payload);
                    off += consumed;
                }
                RecordRead::End => break,
                RecordRead::Invalid { reason } => panic!("invalid: {reason}"),
            }
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], b"alpha");
        assert!(seen[1].is_empty());
        assert_eq!(seen[2], vec![0xAB; 300]);
    }

    #[test]
    fn truncation_anywhere_is_invalid_not_a_panic() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"payload-bytes");
        for cut in 1..buf.len() {
            match read_record(&buf[..cut], 0) {
                RecordRead::Invalid { .. } => {}
                other => panic!("cut at {cut}: expected Invalid, got {other:?}"),
            }
        }
    }

    #[test]
    fn bitflip_is_detected() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"sensitive");
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                matches!(read_record(&bad, 0), RecordRead::Invalid { .. }),
                "flip at byte {i} not caught"
            );
        }
    }

    #[test]
    fn absurd_length_rejected_without_allocation() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF]; // 4 GiB length
        buf.extend_from_slice(&[0u8; 8]);
        assert!(matches!(read_record(&buf, 0), RecordRead::Invalid { .. }));
    }

    #[test]
    fn scalar_helpers_roundtrip() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX);
        put_str(&mut out, "a/b");
        put_bytes(&mut out, &[1, 2, 3]);
        let mut buf = out.as_slice();
        assert_eq!(get_u32(&mut buf).unwrap(), 7);
        assert_eq!(get_u64(&mut buf).unwrap(), u64::MAX);
        assert_eq!(get_str(&mut buf).unwrap(), "a/b");
        assert_eq!(get_bytes(&mut buf).unwrap(), vec![1, 2, 3]);
        assert!(buf.is_empty());
        assert!(get_u8(&mut buf).is_err());
    }
}
