#![warn(missing_docs)]

//! # lightweb-store
//!
//! Durable storage for the lightweb content universe. The paper's
//! deployment story (§3, §5.3) assumes CDN-scale servers whose universes
//! survive restarts and outlive RAM; this crate supplies that layer for
//! the reproduction:
//!
//! * [`record`] — the shared on-disk record format: length-prefixed,
//!   SipHash-2-4-checksummed payloads with torn-write detection.
//! * [`wal`] — the append-only write-ahead log of universe mutations
//!   (`register_domain` / `publish_code` / `publish_data` /
//!   `unpublish_data`), with torn-tail truncation on replay.
//! * [`segment`] — paged blob segment files holding values too large to
//!   ride inline in a WAL record.
//! * [`snapshot`] — atomic, checksummed full-state snapshots enabling log
//!   compaction.
//! * [`store`] — [`DurableStore`]: the engine gluing the above together,
//!   with an `open` path that recovers exactly or fails loudly.
//! * [`atomic_file`] — write-to-temp-fsync-rename replacement, also used
//!   by the browser to persist per-domain `LocalStorage`.
//!
//! Every operation is instrumented through `lightweb-telemetry`
//! (`store.wal.append.ns`, `store.wal.fsync.ns`, `store.snapshot.bytes`,
//! `store.segment.append.ns`, `store.wal.torn_tail`, …).

pub mod atomic_file;
pub mod error;
pub mod ops;
pub mod record;
pub mod segment;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::StoreError;
pub use ops::{BlobRef, StoreOp, StoreState, ValueRepr};
pub use segment::SegmentStore;
pub use store::{DurableStore, StoreConfig};
pub use wal::Wal;
