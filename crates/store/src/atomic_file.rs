//! Atomic file replacement: write-to-temp, fsync, rename.
//!
//! Snapshots, the browser's persisted `LocalStorage`, and anything else
//! that must never be observed half-written go through
//! [`write_atomic`]: the bytes land in a `.tmp` sibling, the temp file is
//! fsynced, and only then renamed over the destination. On POSIX the
//! rename is atomic, so a crash at any point leaves either the old file
//! or the new file — never a torn mixture. Leftover `.tmp` files from a
//! crash mid-write are ignored by every reader and swept by
//! [`remove_stale_temps`].

use crate::error::StoreError;
use crate::record::{checksum, RECORD_HEADER_LEN};
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// Suffix given to in-flight temp files.
pub const TMP_SUFFIX: &str = ".tmp";

/// Atomically replace `path` with `contents`.
pub fn write_atomic(path: &Path, contents: &[u8]) -> Result<(), StoreError> {
    let _t = lightweb_telemetry::span!("store.atomic_file.write.ns");
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself: fsync the containing directory where the
    // platform allows opening directories (POSIX does; on others the
    // rename alone is the best available).
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Atomically replace `path` with a checksummed wrapper of `payload`,
/// readable with [`read_checksummed`]. The wrapper is the store's standard
/// record framing (`u32 len | u64 siphash | payload`).
pub fn write_checksummed(path: &Path, payload: &[u8]) -> Result<(), StoreError> {
    let mut framed = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    crate::record::write_record(&mut framed, payload);
    write_atomic(path, &framed)
}

/// Read a file written by [`write_checksummed`], failing loudly on any
/// length or checksum mismatch.
pub fn read_checksummed(path: &Path) -> Result<Vec<u8>, StoreError> {
    let bytes = fs::read(path)?;
    match crate::record::read_record(&bytes, 0) {
        crate::record::RecordRead::Valid { payload, consumed } if consumed == bytes.len() => {
            Ok(payload)
        }
        crate::record::RecordRead::Valid { .. } => Err(StoreError::Corrupt(format!(
            "{}: trailing bytes after checksummed payload",
            path.display()
        ))),
        crate::record::RecordRead::End => Err(StoreError::Corrupt(format!(
            "{}: empty checksummed file",
            path.display()
        ))),
        crate::record::RecordRead::Invalid { reason } => {
            Err(StoreError::Corrupt(format!("{}: {reason}", path.display())))
        }
    }
}

/// Delete leftover `.tmp` files in `dir` (crash debris from interrupted
/// atomic writes). Returns how many were removed.
pub fn remove_stale_temps(dir: &Path) -> Result<usize, StoreError> {
    let mut removed = 0;
    if !dir.is_dir() {
        return Ok(0);
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().ends_with(TMP_SUFFIX) {
            fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    if removed > 0 {
        lightweb_telemetry::counter!("store.atomic_file.stale_temps").add(removed as u64);
    }
    Ok(removed)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(TMP_SUFFIX);
    path.with_file_name(name)
}

/// Expose the checksum for callers wanting to label content-addressed
/// files (e.g. per-domain LocalStorage file names).
pub fn content_hash(payload: &[u8]) -> u64 {
    checksum(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lightweb-atomic-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = scratch("replace");
        let p = dir.join("f");
        write_atomic(&p, b"first version, rather long").unwrap();
        write_atomic(&p, b"second").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second");
        assert!(!tmp_path(&p).exists());
    }

    #[test]
    fn checksummed_roundtrip_and_corruption() {
        let dir = scratch("sum");
        let p = dir.join("f");
        write_checksummed(&p, b"precious state").unwrap();
        assert_eq!(read_checksummed(&p).unwrap(), b"precious state");

        let mut raw = fs::read(&p).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        fs::write(&p, &raw).unwrap();
        assert!(matches!(read_checksummed(&p), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn stale_temps_are_swept() {
        let dir = scratch("sweep");
        fs::write(dir.join("a.tmp"), b"debris").unwrap();
        fs::write(dir.join("keep"), b"real").unwrap();
        assert_eq!(remove_stale_temps(&dir).unwrap(), 1);
        assert!(dir.join("keep").exists());
        assert!(!dir.join("a.tmp").exists());
    }
}
