//! The journaled operation vocabulary and the logical state it folds into.
//!
//! The WAL records exactly the four universe mutations the paper's
//! publisher flow produces: `register_domain`, `publish_code`,
//! `publish_data`, and `unpublish_data`. Replaying a prefix of the log
//! over a snapshot reconstructs the universe's book of record
//! ([`StoreState`]); re-publishing that state through the ZLTP servers
//! re-seeds the PIR/DPF databases, so a recovered universe answers
//! queries identically to the one that crashed.
//!
//! Large data values are spilled to paged segment files by the store; the
//! WAL record then carries a [`BlobRef`] instead of inline bytes.

use crate::error::StoreError;
use crate::record::{
    get_bytes, get_str, get_u32, get_u64, get_u8, put_bytes, put_str, put_u32, put_u64,
};
use std::collections::BTreeMap;

/// Location of a value spilled into a segment file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlobRef {
    /// Segment file id.
    pub segment: u32,
    /// Byte offset of the record inside the segment file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
}

/// A data value as journaled: small values ride inline in the WAL record,
/// large ones are a reference into a segment file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueRepr {
    /// The bytes themselves.
    Inline(Vec<u8>),
    /// A pointer into a paged segment file.
    Blob(BlobRef),
}

impl ValueRepr {
    /// Length of the value in bytes, wherever it lives.
    pub fn len(&self) -> usize {
        match self {
            ValueRepr::Inline(b) => b.len(),
            ValueRepr::Blob(r) => r.len as usize,
        }
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One durable universe mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreOp {
    /// `Universe::register_domain`.
    RegisterDomain {
        /// The claimed domain.
        domain: String,
        /// The claiming publisher.
        publisher: String,
    },
    /// `Universe::publish_code`.
    PublishCode {
        /// Acting publisher.
        publisher: String,
        /// Domain whose code blob is replaced.
        domain: String,
        /// The code text.
        code: String,
    },
    /// `Universe::publish_data`.
    PublishData {
        /// Acting publisher.
        publisher: String,
        /// Full lightweb path.
        path: String,
        /// The raw (pre-chaining) value.
        value: ValueRepr,
    },
    /// `Universe::unpublish_data` — the tombstone.
    UnpublishData {
        /// Acting publisher.
        publisher: String,
        /// Path being removed.
        path: String,
    },
}

mod op_type {
    pub const REGISTER_DOMAIN: u8 = 1;
    pub const PUBLISH_CODE: u8 = 2;
    pub const PUBLISH_DATA_INLINE: u8 = 3;
    pub const PUBLISH_DATA_BLOB: u8 = 4;
    pub const UNPUBLISH_DATA: u8 = 5;
}

/// Encode `(seq, op)` into a WAL record payload.
pub fn encode_op(seq: u64, op: &StoreOp) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, seq);
    match op {
        StoreOp::RegisterDomain { domain, publisher } => {
            out.push(op_type::REGISTER_DOMAIN);
            put_str(&mut out, domain);
            put_str(&mut out, publisher);
        }
        StoreOp::PublishCode {
            publisher,
            domain,
            code,
        } => {
            out.push(op_type::PUBLISH_CODE);
            put_str(&mut out, publisher);
            put_str(&mut out, domain);
            put_str(&mut out, code);
        }
        StoreOp::PublishData {
            publisher,
            path,
            value,
        } => match value {
            ValueRepr::Inline(bytes) => {
                out.push(op_type::PUBLISH_DATA_INLINE);
                put_str(&mut out, publisher);
                put_str(&mut out, path);
                put_bytes(&mut out, bytes);
            }
            ValueRepr::Blob(r) => {
                out.push(op_type::PUBLISH_DATA_BLOB);
                put_str(&mut out, publisher);
                put_str(&mut out, path);
                put_u32(&mut out, r.segment);
                put_u64(&mut out, r.offset);
                put_u32(&mut out, r.len);
            }
        },
        StoreOp::UnpublishData { publisher, path } => {
            out.push(op_type::UNPUBLISH_DATA);
            put_str(&mut out, publisher);
            put_str(&mut out, path);
        }
    }
    out
}

/// Decode a WAL record payload back into `(seq, op)`.
pub fn decode_op(payload: &[u8]) -> Result<(u64, StoreOp), StoreError> {
    let mut buf = payload;
    let seq = get_u64(&mut buf)?;
    let tag = get_u8(&mut buf)?;
    let op = match tag {
        op_type::REGISTER_DOMAIN => StoreOp::RegisterDomain {
            domain: get_str(&mut buf)?,
            publisher: get_str(&mut buf)?,
        },
        op_type::PUBLISH_CODE => StoreOp::PublishCode {
            publisher: get_str(&mut buf)?,
            domain: get_str(&mut buf)?,
            code: get_str(&mut buf)?,
        },
        op_type::PUBLISH_DATA_INLINE => StoreOp::PublishData {
            publisher: get_str(&mut buf)?,
            path: get_str(&mut buf)?,
            value: ValueRepr::Inline(get_bytes(&mut buf)?),
        },
        op_type::PUBLISH_DATA_BLOB => StoreOp::PublishData {
            publisher: get_str(&mut buf)?,
            path: get_str(&mut buf)?,
            value: ValueRepr::Blob(BlobRef {
                segment: get_u32(&mut buf)?,
                offset: get_u64(&mut buf)?,
                len: get_u32(&mut buf)?,
            }),
        },
        op_type::UNPUBLISH_DATA => StoreOp::UnpublishData {
            publisher: get_str(&mut buf)?,
            path: get_str(&mut buf)?,
        },
        t => return Err(StoreError::Corrupt(format!("unknown op type {t}"))),
    };
    if !buf.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after op",
            buf.len()
        )));
    }
    Ok((seq, op))
}

/// The logical content of a universe, as reconstructed by recovery and
/// serialized by snapshots. This is exactly the universe's book of
/// record: ownership, per-domain code text, and raw (pre-chaining) data
/// values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreState {
    /// domain → owning publisher.
    pub domains: BTreeMap<String, String>,
    /// domain → code text.
    pub code: BTreeMap<String, String>,
    /// path → raw value.
    pub data: BTreeMap<String, Vec<u8>>,
}

impl StoreState {
    /// Fold one op into the state. `value` must be the resolved bytes for
    /// `PublishData` ops (inline or read back from a segment); other ops
    /// ignore it.
    pub fn apply(&mut self, op: &StoreOp, resolved_value: Option<Vec<u8>>) {
        match op {
            StoreOp::RegisterDomain { domain, publisher } => {
                self.domains.insert(domain.clone(), publisher.clone());
            }
            StoreOp::PublishCode { domain, code, .. } => {
                self.code.insert(domain.clone(), code.clone());
            }
            StoreOp::PublishData { path, value, .. } => {
                let bytes = match (resolved_value, value) {
                    (Some(b), _) => b,
                    (None, ValueRepr::Inline(b)) => b.clone(),
                    (None, ValueRepr::Blob(_)) => {
                        unreachable!("blob refs must be resolved before apply")
                    }
                };
                self.data.insert(path.clone(), bytes);
            }
            StoreOp::UnpublishData { path, .. } => {
                // The tombstone: replay must end with the value absent.
                self.data.remove(path);
            }
        }
    }

    /// Total number of logical entries (domains + code blobs + values).
    pub fn entries(&self) -> usize {
        self.domains.len() + self.code.len() + self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: StoreOp) {
        let payload = encode_op(42, &op);
        let (seq, back) = decode_op(&payload).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(back, op);
    }

    #[test]
    fn all_ops_roundtrip() {
        roundtrip(StoreOp::RegisterDomain {
            domain: "nytimes.com".into(),
            publisher: "NYTimes".into(),
        });
        roundtrip(StoreOp::PublishCode {
            publisher: "NYTimes".into(),
            domain: "nytimes.com".into(),
            code: "route { \"/\" -> data \"nytimes.com/home\" }".into(),
        });
        roundtrip(StoreOp::PublishData {
            publisher: "p".into(),
            path: "a.com/x".into(),
            value: ValueRepr::Inline(vec![0, 1, 2, 255]),
        });
        roundtrip(StoreOp::PublishData {
            publisher: "p".into(),
            path: "a.com/big".into(),
            value: ValueRepr::Blob(BlobRef {
                segment: 3,
                offset: 8192,
                len: 1 << 20,
            }),
        });
        roundtrip(StoreOp::UnpublishData {
            publisher: "p".into(),
            path: "a.com/x".into(),
        });
    }

    #[test]
    fn truncated_or_trailing_payloads_rejected() {
        let payload = encode_op(
            7,
            &StoreOp::RegisterDomain {
                domain: "a.com".into(),
                publisher: "A".into(),
            },
        );
        for cut in 0..payload.len() {
            assert!(decode_op(&payload[..cut]).is_err(), "accepted cut {cut}");
        }
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(decode_op(&trailing).is_err());
    }

    #[test]
    fn state_fold_applies_tombstones() {
        let mut s = StoreState::default();
        s.apply(
            &StoreOp::RegisterDomain {
                domain: "a.com".into(),
                publisher: "A".into(),
            },
            None,
        );
        s.apply(
            &StoreOp::PublishData {
                publisher: "A".into(),
                path: "a.com/x".into(),
                value: ValueRepr::Inline(b"v1".to_vec()),
            },
            None,
        );
        s.apply(
            &StoreOp::PublishData {
                publisher: "A".into(),
                path: "a.com/x".into(),
                value: ValueRepr::Inline(b"v2".to_vec()),
            },
            None,
        );
        assert_eq!(s.data["a.com/x"], b"v2");
        s.apply(
            &StoreOp::UnpublishData {
                publisher: "A".into(),
                path: "a.com/x".into(),
            },
            None,
        );
        assert!(!s.data.contains_key("a.com/x"));
        assert_eq!(s.entries(), 1);
    }
}
