//! The append-only write-ahead log.
//!
//! One WAL file (`wal-<start_seq>.log`) holds the checksummed op records
//! for every sequence number at or above its start. Appends are
//! `write_all` + optional fsync; replay validates records front to back.
//!
//! **Torn-tail policy.** A crash can leave a partially written final
//! record. Replay stops at the first invalid record, truncates the file
//! back to the last valid boundary, and reports what was dropped — the
//! WAL recovers *to the last valid record*, never past it. Anything that
//! fails validation after more valid data (impossible to reach with this
//! reader, which stops at the first defect) or a sequence-number gap is a
//! hard [`StoreError::Corrupt`]: that is not a torn write, and silently
//! continuing would replay the wrong history.

use crate::error::StoreError;
use crate::ops::{decode_op, StoreOp};
use crate::record::{read_record, write_record, RecordRead};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the WAL starting at `start_seq`.
pub fn wal_file_name(start_seq: u64) -> String {
    format!("wal-{start_seq:016x}.log")
}

/// Parse a WAL file name back into its start sequence number.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    u64::from_str_radix(name.strip_prefix("wal-")?.strip_suffix(".log")?, 16).ok()
}

/// Result of replaying one WAL file.
pub struct WalReplay {
    /// Decoded `(seq, op)` pairs, in log order.
    pub ops: Vec<(u64, StoreOp)>,
    /// If the tail was torn: a description of the defect and how many
    /// bytes were truncated away.
    pub torn_tail: Option<(String, u64)>,
}

/// An open, appendable WAL file.
pub struct Wal {
    path: PathBuf,
    file: File,
    start_seq: u64,
    records: u64,
}

impl Wal {
    /// Create a fresh, empty WAL starting at `start_seq`. Fails if the
    /// file already exists (that would silently shadow history).
    pub fn create(dir: &Path, start_seq: u64) -> Result<Self, StoreError> {
        let path = dir.join(wal_file_name(start_seq));
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        file.sync_all()?;
        Ok(Self {
            path,
            file,
            start_seq,
            records: 0,
        })
    }

    /// Open an existing WAL: validate every record, truncate a torn tail
    /// back to the last valid boundary, and return the log's ops. Records
    /// with `seq < min_seq` (already covered by the snapshot) are skipped;
    /// the rest must be exactly consecutive or the open fails loudly.
    pub fn open(dir: &Path, start_seq: u64, min_seq: u64) -> Result<(Self, WalReplay), StoreError> {
        let _t = lightweb_telemetry::span!("store.wal.replay.ns");
        let path = dir.join(wal_file_name(start_seq));
        let bytes = fs::read(&path)?;
        let mut offset = 0usize;
        let mut ops = Vec::new();
        let mut torn_tail = None;
        let mut expected_seq = start_seq;
        loop {
            match read_record(&bytes, offset) {
                RecordRead::Valid { payload, consumed } => {
                    let (seq, op) = decode_op(&payload)?;
                    if seq != expected_seq {
                        return Err(StoreError::Corrupt(format!(
                            "WAL {}: record claims seq {seq}, expected {expected_seq}",
                            path.display()
                        )));
                    }
                    expected_seq += 1;
                    if seq >= min_seq {
                        ops.push((seq, op));
                    }
                    offset += consumed;
                }
                RecordRead::End => break,
                RecordRead::Invalid { reason } => {
                    // The torn tail: drop everything from the first
                    // invalid record onward and shrink the file so new
                    // appends start at a clean boundary.
                    let dropped = (bytes.len() - offset) as u64;
                    torn_tail = Some((reason, dropped));
                    lightweb_telemetry::counter!("store.wal.torn_tail").inc();
                    break;
                }
            }
        }
        if torn_tail.is_some() {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(offset as u64)?;
            f.sync_all()?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        lightweb_telemetry::counter!("store.replay.records").add(ops.len() as u64);
        Ok((
            Self {
                path,
                file,
                start_seq,
                records: (expected_seq - start_seq),
            },
            WalReplay { ops, torn_tail },
        ))
    }

    /// Append one already-encoded op payload as a record, optionally
    /// fsyncing before returning (the durability point).
    pub fn append(&mut self, payload: &[u8], fsync: bool) -> Result<(), StoreError> {
        let _t = lightweb_telemetry::span!("store.wal.append.ns");
        let mut framed = Vec::with_capacity(payload.len() + 16);
        write_record(&mut framed, payload);
        self.file.write_all(&framed)?;
        if fsync {
            let _s = lightweb_telemetry::span!("store.wal.fsync.ns");
            self.file.sync_all()?;
        }
        self.records += 1;
        lightweb_telemetry::counter!("store.wal.records").inc();
        lightweb_telemetry::counter!("store.wal.bytes").add(framed.len() as u64);
        Ok(())
    }

    /// First sequence number this file covers.
    pub fn start_seq(&self) -> u64 {
        self.start_seq
    }

    /// Records currently in the file (after any tail truncation).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The file's path (used by compaction to delete superseded logs).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// All WAL start sequences present in `dir`, sorted ascending.
pub fn list_wals(dir: &Path) -> Result<Vec<u64>, StoreError> {
    let mut starts = Vec::new();
    for entry in fs::read_dir(dir)? {
        if let Some(s) = parse_wal_name(&entry?.file_name().to_string_lossy()) {
            starts.push(s);
        }
    }
    starts.sort_unstable();
    Ok(starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{encode_op, ValueRepr};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lightweb-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn op(i: u64) -> StoreOp {
        StoreOp::PublishData {
            publisher: "P".into(),
            path: format!("a.com/{i}"),
            value: ValueRepr::Inline(vec![i as u8; 32]),
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = scratch("roundtrip");
        {
            let mut w = Wal::create(&dir, 0).unwrap();
            for i in 0..5u64 {
                w.append(&encode_op(i, &op(i)), true).unwrap();
            }
        }
        let (w, replay) = Wal::open(&dir, 0, 0).unwrap();
        assert_eq!(w.records(), 5);
        assert!(replay.torn_tail.is_none());
        assert_eq!(replay.ops.len(), 5);
        assert_eq!(replay.ops[3].0, 3);
        assert_eq!(replay.ops[3].1, op(3));
    }

    #[test]
    fn min_seq_skips_snapshot_covered_records() {
        let dir = scratch("minseq");
        {
            let mut w = Wal::create(&dir, 0).unwrap();
            for i in 0..6u64 {
                w.append(&encode_op(i, &op(i)), false).unwrap();
            }
        }
        let (_, replay) = Wal::open(&dir, 0, 4).unwrap();
        assert_eq!(
            replay.ops.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            [4, 5]
        );
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let dir = scratch("torn");
        {
            let mut w = Wal::create(&dir, 0).unwrap();
            for i in 0..4u64 {
                w.append(&encode_op(i, &op(i)), true).unwrap();
            }
        }
        let path = dir.join(wal_file_name(0));
        let full = fs::read(&path).unwrap();
        // Tear the file mid-way through the last record.
        fs::write(&path, &full[..full.len() - 7]).unwrap();
        let (mut w, replay) = Wal::open(&dir, 0, 0).unwrap();
        assert_eq!(replay.ops.len(), 3, "last record dropped");
        let (reason, dropped) = replay.torn_tail.expect("tail reported");
        assert!(reason.contains("truncated"), "{reason}");
        assert!(dropped > 0);
        // The file is usable again: appends continue from the cut.
        w.append(&encode_op(3, &op(99)), true).unwrap();
        let (_, replay2) = Wal::open(&dir, 0, 0).unwrap();
        assert!(replay2.torn_tail.is_none());
        assert_eq!(replay2.ops.len(), 4);
        assert_eq!(replay2.ops[3].1, op(99));
    }

    #[test]
    fn corrupted_tail_checksum_recovers_to_last_valid() {
        let dir = scratch("flip");
        {
            let mut w = Wal::create(&dir, 0).unwrap();
            for i in 0..3u64 {
                w.append(&encode_op(i, &op(i)), true).unwrap();
            }
        }
        let path = dir.join(wal_file_name(0));
        let mut raw = fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 3] ^= 0x40; // flip a bit inside the last record's payload
        fs::write(&path, &raw).unwrap();
        let (_, replay) = Wal::open(&dir, 0, 0).unwrap();
        assert_eq!(replay.ops.len(), 2);
        assert!(replay.torn_tail.unwrap().0.contains("checksum"));
    }

    #[test]
    fn sequence_gap_fails_loudly() {
        let dir = scratch("gap");
        {
            let mut w = Wal::create(&dir, 0).unwrap();
            w.append(&encode_op(0, &op(0)), false).unwrap();
            w.append(&encode_op(5, &op(5)), false).unwrap(); // wrong seq
        }
        assert!(matches!(Wal::open(&dir, 0, 0), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn create_refuses_to_shadow_existing_log() {
        let dir = scratch("shadow");
        let _w = Wal::create(&dir, 0).unwrap();
        assert!(Wal::create(&dir, 0).is_err());
    }
}
