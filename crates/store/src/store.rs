//! The durable store: WAL + segments + snapshots, glued into one engine
//! with a crash-recovery `open` path.
//!
//! ## Directory layout
//!
//! ```text
//! <state-dir>/
//!   wal-<start_seq>.log        append-only op log (checksummed records)
//!   snapshot-<seq>.snap        atomic full-state snapshots
//!   segments/seg-<id>.seg      paged blob segments for large values
//! ```
//!
//! ## Write path
//!
//! `append(op)`: a `PublishData` whose value is at least
//! [`StoreConfig::segment_threshold`] bytes is first written to the
//! active segment and fsynced; the WAL record then carries the
//! [`BlobRef`]. The WAL record itself is fsynced (by default) before
//! `append` returns — that is the durability point.
//!
//! ## Snapshot + compaction
//!
//! `snapshot(state)` writes `snapshot-<seq>.snap` atomically, starts
//! `wal-<seq>.log`, then deletes the superseded WAL files, older
//! snapshots, and all closed segments (the snapshot inlines every live
//! value, so nothing references them). A crash between any two of those
//! steps is recoverable: recovery prefers the newest valid snapshot and
//! skips WAL records it already covers.
//!
//! ## Recovery
//!
//! `open` sweeps stale temp files, loads the newest snapshot that
//! validates, picks the WAL covering that sequence point, truncates a
//! torn WAL tail back to the last valid record, replays the remainder
//! (resolving segment refs, failing loudly on any non-tail corruption),
//! and returns the reconstructed [`StoreState`].

use crate::error::StoreError;
use crate::ops::{encode_op, BlobRef, StoreOp, StoreState, ValueRepr};
use crate::segment::{SegmentStore, DEFAULT_PAGE_SIZE};
use crate::snapshot::{list_snapshots, read_snapshot, snapshot_path, write_snapshot};
use crate::wal::{list_wals, Wal};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Tuning knobs for one store.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// fsync the WAL on every append (the durability point). Turning this
    /// off trades crash safety for throughput; recovery still works, it
    /// just may lose the unsynced suffix.
    pub fsync_wal: bool,
    /// Take a snapshot (and compact) automatically once this many ops
    /// have accumulated since the last one. `0` disables auto-snapshots.
    pub snapshot_every_ops: u64,
    /// Values at least this long are spilled to segment files instead of
    /// riding inline in the WAL record.
    pub segment_threshold: usize,
    /// Segment page size (power of two).
    pub page_size: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            fsync_wal: true,
            snapshot_every_ops: 1024,
            segment_threshold: 4096,
            page_size: DEFAULT_PAGE_SIZE,
        }
    }
}

impl StoreConfig {
    /// A configuration suited to tests: tiny thresholds so every
    /// mechanism (segments, snapshots, compaction) exercises quickly.
    pub fn small_test() -> Self {
        Self {
            fsync_wal: true,
            snapshot_every_ops: 8,
            segment_threshold: 256,
            page_size: 512,
        }
    }
}

struct Inner {
    wal: Wal,
    segments: SegmentStore,
    /// Next sequence number to assign.
    seq: u64,
    /// Sequence point covered by the newest durable snapshot.
    snapshot_seq: u64,
}

/// A durable storage engine rooted at one state directory.
pub struct DurableStore {
    dir: PathBuf,
    cfg: StoreConfig,
    inner: Mutex<Inner>,
}

impl DurableStore {
    /// Open (or create) the store at `dir`, running crash recovery, and
    /// return it together with the reconstructed logical state.
    pub fn open(dir: &Path, cfg: StoreConfig) -> Result<(Self, StoreState), StoreError> {
        let _t = lightweb_telemetry::span!("store.open.ns");
        fs::create_dir_all(dir)?;
        crate::atomic_file::remove_stale_temps(dir)?;
        let segments = SegmentStore::open(&dir.join("segments"), cfg.page_size)?;

        // 1. Newest snapshot that validates. A corrupt newest snapshot is
        // tolerable only while the WAL covering the older one still
        // exists (i.e. compaction had not finished); otherwise history is
        // gone and we must fail loudly rather than resurrect stale state.
        let snaps = list_snapshots(dir)?;
        let wals = list_wals(dir)?;
        let mut state = StoreState::default();
        let mut snapshot_seq = 0u64;
        let mut snap_err: Option<StoreError> = None;
        for &seq in snaps.iter().rev() {
            match read_snapshot(dir, seq) {
                Ok(s) => {
                    state = s;
                    snapshot_seq = seq;
                    break;
                }
                Err(e) => {
                    let fallback_covered = snaps
                        .iter()
                        .rev()
                        .find(|&&s| s < seq)
                        .map(|&older| wals.iter().any(|&w| w <= older))
                        .unwrap_or(!wals.is_empty() && wals[0] == 0);
                    if !fallback_covered {
                        return Err(StoreError::Corrupt(format!(
                            "newest snapshot {} is unreadable ({e}) and no older \
                             snapshot+WAL chain covers it; refusing to recover silently",
                            snapshot_path(dir, seq).display()
                        )));
                    }
                    snap_err = Some(e);
                }
            }
        }
        if snap_err.is_some() {
            lightweb_telemetry::counter!("store.recover.snapshot_fallback").inc();
        }

        // 2. The WAL for this sequence point: largest start <= snapshot_seq.
        // (A crash between snapshot write and WAL rotation leaves only an
        // older WAL; its already-covered records are skipped by seq.)
        let wal_start = wals.iter().copied().filter(|&s| s <= snapshot_seq).max();
        let (wal, replayed) = match wal_start {
            Some(start) => {
                let (wal, replay) = Wal::open(dir, start, snapshot_seq)?;
                if let Some((reason, dropped)) = &replay.torn_tail {
                    lightweb_telemetry::counter!("store.recover.torn_bytes").add(*dropped);
                    // Torn tails are expected after a crash; surface them
                    // in telemetry (store.wal.torn_tail) rather than stderr.
                    let _ = reason;
                }
                let mut applied = 0u64;
                for (seq, op) in &replay.ops {
                    let resolved = match op {
                        StoreOp::PublishData {
                            value: ValueRepr::Blob(r),
                            ..
                        } => Some(segments.read(r)?),
                        _ => None,
                    };
                    state.apply(op, resolved);
                    applied += 1;
                    debug_assert_eq!(seq + 1, snapshot_seq.max(wal.start_seq()) + applied);
                }
                let next = replay.ops.last().map_or_else(
                    || snapshot_seq.max(wal.start_seq() + wal.records()),
                    |(s, _)| s + 1,
                );
                (wal, next)
            }
            None => (Wal::create(dir, snapshot_seq)?, snapshot_seq),
        };
        // Any WAL older than the one we chose is superseded debris from a
        // crash mid-compaction.
        for &s in &wals {
            if s < wal.start_seq() {
                fs::remove_file(dir.join(crate::wal::wal_file_name(s)))?;
            }
        }

        let seq = wal_start.map_or(snapshot_seq, |_| replayed.max(snapshot_seq));
        let store = Self {
            dir: dir.to_path_buf(),
            cfg,
            inner: Mutex::new(Inner {
                wal,
                segments,
                seq,
                snapshot_seq,
            }),
        };
        Ok((store, state))
    }

    /// Journal one op; returns its sequence number. Large `PublishData`
    /// values are spilled to a segment first. Durable on return when
    /// `fsync_wal` is set.
    pub fn append(&self, op: &StoreOp) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.seq;
        let spilled;
        let to_journal: &StoreOp = match op {
            StoreOp::PublishData {
                publisher,
                path,
                value: ValueRepr::Inline(bytes),
            } if bytes.len() >= self.cfg.segment_threshold => {
                let r: BlobRef = inner.segments.append(bytes)?;
                spilled = StoreOp::PublishData {
                    publisher: publisher.clone(),
                    path: path.clone(),
                    value: ValueRepr::Blob(r),
                };
                &spilled
            }
            _ => op,
        };
        let payload = encode_op(seq, to_journal);
        let fsync = self.cfg.fsync_wal;
        inner.wal.append(&payload, fsync)?;
        inner.seq += 1;
        Ok(seq)
    }

    /// Whether the auto-snapshot cadence says it is time to compact.
    pub fn should_snapshot(&self) -> bool {
        if self.cfg.snapshot_every_ops == 0 {
            return false;
        }
        let inner = self.inner.lock().unwrap();
        inner.seq - inner.snapshot_seq >= self.cfg.snapshot_every_ops
    }

    /// Snapshot `state` (which must reflect every op journaled so far)
    /// and compact: superseded WAL files, older snapshots, and all closed
    /// segments are deleted.
    pub fn snapshot(&self, state: &StoreState) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.seq;
        write_snapshot(&self.dir, seq, state)?;
        // Rotate the WAL. A crash after the snapshot but before (or
        // during) any of the following steps is recoverable — recovery
        // keys off the snapshot and skips covered records.
        let new_wal = Wal::create(&self.dir, seq)?;
        let old_wal = std::mem::replace(&mut inner.wal, new_wal);
        fs::remove_file(old_wal.path())?;
        for old in list_snapshots(&self.dir)? {
            if old < seq {
                fs::remove_file(snapshot_path(&self.dir, old))?;
            }
        }
        let active = inner.segments.rotate();
        inner.segments.delete_below(active)?;
        inner.snapshot_seq = seq;
        Ok(())
    }

    /// Next sequence number to be assigned.
    pub fn seq(&self) -> u64 {
        self.inner.lock().unwrap().seq
    }

    /// Sequence point of the newest durable snapshot.
    pub fn snapshot_seq(&self) -> u64 {
        self.inner.lock().unwrap().snapshot_seq
    }

    /// Ops journaled since the last snapshot.
    pub fn ops_since_snapshot(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.seq - inner.snapshot_seq
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lightweb-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn publish(path: &str, value: Vec<u8>) -> StoreOp {
        StoreOp::PublishData {
            publisher: "P".into(),
            path: path.into(),
            value: ValueRepr::Inline(value),
        }
    }

    #[test]
    fn fresh_store_is_empty_and_journal_recovers() {
        let dir = scratch("fresh");
        let (store, state) = DurableStore::open(&dir, StoreConfig::small_test()).unwrap();
        assert_eq!(state, StoreState::default());
        store
            .append(&StoreOp::RegisterDomain {
                domain: "a.com".into(),
                publisher: "A".into(),
            })
            .unwrap();
        store
            .append(&publish("a.com/x", b"hello".to_vec()))
            .unwrap();
        store.append(&publish("a.com/y", vec![9u8; 1000])).unwrap(); // > threshold: segment
        drop(store);

        let (store2, state2) = DurableStore::open(&dir, StoreConfig::small_test()).unwrap();
        assert_eq!(state2.domains["a.com"], "A");
        assert_eq!(state2.data["a.com/x"], b"hello");
        assert_eq!(state2.data["a.com/y"], vec![9u8; 1000]);
        assert_eq!(store2.seq(), 3);
    }

    #[test]
    fn snapshot_compacts_and_recovery_prefers_it() {
        let dir = scratch("compact");
        let cfg = StoreConfig::small_test();
        let (store, mut state) = DurableStore::open(&dir, cfg.clone()).unwrap();
        let mut ops = Vec::new();
        ops.push(StoreOp::RegisterDomain {
            domain: "a.com".into(),
            publisher: "A".into(),
        });
        for i in 0..10 {
            ops.push(publish(&format!("a.com/{i}"), vec![i as u8; 700]));
        }
        for op in &ops {
            store.append(op).unwrap();
            state.apply(op, None);
        }
        assert!(store.should_snapshot());
        store.snapshot(&state).unwrap();
        assert!(!store.should_snapshot());
        assert_eq!(store.ops_since_snapshot(), 0);
        // Compaction removed the old WAL and the spilled segments.
        assert_eq!(list_wals(&dir).unwrap(), vec![store.seq()]);
        let seg_files = fs::read_dir(dir.join("segments")).unwrap().count();
        assert_eq!(seg_files, 0, "all closed segments deleted");

        // Post-snapshot appends land in the new WAL.
        store
            .append(&publish("a.com/after", b"tail".to_vec()))
            .unwrap();
        drop(store);
        let (_, recovered) = DurableStore::open(&dir, cfg).unwrap();
        assert_eq!(recovered.data.len(), 11);
        assert_eq!(recovered.data["a.com/after"], b"tail");
        assert_eq!(recovered.data["a.com/3"], vec![3u8; 700]);
    }

    #[test]
    fn unpublish_tombstone_survives_replay_and_snapshot() {
        let dir = scratch("tombstone");
        let cfg = StoreConfig {
            snapshot_every_ops: 0,
            ..StoreConfig::small_test()
        };
        let (store, mut state) = DurableStore::open(&dir, cfg.clone()).unwrap();
        for op in [
            StoreOp::RegisterDomain {
                domain: "a.com".into(),
                publisher: "A".into(),
            },
            publish("a.com/x", b"doomed".to_vec()),
            StoreOp::UnpublishData {
                publisher: "A".into(),
                path: "a.com/x".into(),
            },
        ] {
            store.append(&op).unwrap();
            state.apply(&op, None);
        }
        drop(store);
        // WAL replay path.
        let (store2, replayed) = DurableStore::open(&dir, cfg.clone()).unwrap();
        assert!(!replayed.data.contains_key("a.com/x"));
        // Snapshot path.
        store2.snapshot(&replayed).unwrap();
        drop(store2);
        let (_, snapped) = DurableStore::open(&dir, cfg).unwrap();
        assert!(!snapped.data.contains_key("a.com/x"));
        assert_eq!(snapped.domains.len(), 1);
    }

    #[test]
    fn sequence_numbers_continue_across_restarts() {
        let dir = scratch("seq");
        let cfg = StoreConfig::small_test();
        let (store, _) = DurableStore::open(&dir, cfg.clone()).unwrap();
        assert_eq!(store.append(&publish("a.b/0", vec![0])).unwrap(), 0);
        assert_eq!(store.append(&publish("a.b/1", vec![1])).unwrap(), 1);
        drop(store);
        let (store2, _) = DurableStore::open(&dir, cfg).unwrap();
        assert_eq!(store2.append(&publish("a.b/2", vec![2])).unwrap(), 2);
    }
}
