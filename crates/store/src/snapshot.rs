//! Snapshots: a full serialization of the logical state, atomically
//! written, checksummed, and named by the sequence number it covers.
//!
//! `snapshot-<seq>.snap` holds the state after applying ops `[0, seq)`;
//! replaying the WAL records with sequence numbers `>= seq` on top of it
//! reconstructs the exact pre-crash state. Snapshots inline every value
//! (including ones the WAL had spilled to segments), which is what makes
//! compaction free to delete old WAL files *and* old segments in one
//! sweep.

use crate::atomic_file::{read_checksummed, write_checksummed};
use crate::error::StoreError;
use crate::ops::StoreState;
use crate::record::{get_bytes, get_str, get_u32, get_u64, put_bytes, put_str, put_u32, put_u64};
use std::fs;
use std::path::{Path, PathBuf};

/// Snapshot body magic: "LWSN".
const MAGIC: u32 = 0x4C57_534E;
/// Format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// File name of the snapshot covering ops `[0, seq)`.
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snapshot-{seq:016x}.snap")
}

/// Parse a snapshot file name back into its covered sequence number.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    u64::from_str_radix(name.strip_prefix("snapshot-")?.strip_suffix(".snap")?, 16).ok()
}

/// Serialize and atomically write `state` as the snapshot covering
/// `[0, seq)`. Returns the encoded size in bytes.
pub fn write_snapshot(dir: &Path, seq: u64, state: &StoreState) -> Result<usize, StoreError> {
    let _t = lightweb_telemetry::span!("store.snapshot.ns");
    let mut body = Vec::new();
    put_u32(&mut body, MAGIC);
    put_u32(&mut body, SNAPSHOT_VERSION);
    put_u64(&mut body, seq);
    put_u32(&mut body, state.domains.len() as u32);
    for (domain, owner) in &state.domains {
        put_str(&mut body, domain);
        put_str(&mut body, owner);
    }
    put_u32(&mut body, state.code.len() as u32);
    for (domain, code) in &state.code {
        put_str(&mut body, domain);
        put_str(&mut body, code);
    }
    put_u32(&mut body, state.data.len() as u32);
    for (path, value) in &state.data {
        put_str(&mut body, path);
        put_bytes(&mut body, value);
    }
    let len = body.len();
    write_checksummed(&dir.join(snapshot_file_name(seq)), &body)?;
    lightweb_telemetry::counter!("store.snapshot.bytes").add(len as u64);
    lightweb_telemetry::counter!("store.snapshot.count").inc();
    Ok(len)
}

/// Read and validate the snapshot covering `[0, seq)`.
pub fn read_snapshot(dir: &Path, seq: u64) -> Result<StoreState, StoreError> {
    let path = dir.join(snapshot_file_name(seq));
    let body = read_checksummed(&path)?;
    let mut buf = body.as_slice();
    if get_u32(&mut buf)? != MAGIC {
        return Err(StoreError::Corrupt(format!(
            "{}: bad magic",
            path.display()
        )));
    }
    let version = get_u32(&mut buf)?;
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::Version {
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let stamped = get_u64(&mut buf)?;
    if stamped != seq {
        return Err(StoreError::Corrupt(format!(
            "{}: body stamped seq {stamped}, file named {seq}",
            path.display()
        )));
    }
    let mut state = StoreState::default();
    for _ in 0..get_u32(&mut buf)? {
        let domain = get_str(&mut buf)?;
        let owner = get_str(&mut buf)?;
        state.domains.insert(domain, owner);
    }
    for _ in 0..get_u32(&mut buf)? {
        let domain = get_str(&mut buf)?;
        let code = get_str(&mut buf)?;
        state.code.insert(domain, code);
    }
    for _ in 0..get_u32(&mut buf)? {
        let path = get_str(&mut buf)?;
        let value = get_bytes(&mut buf)?;
        state.data.insert(path, value);
    }
    if !buf.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "{}: {} trailing bytes",
            path.display(),
            buf.len()
        )));
    }
    Ok(state)
}

/// All snapshot sequence numbers present in `dir`, sorted ascending.
pub fn list_snapshots(dir: &Path) -> Result<Vec<u64>, StoreError> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        if let Some(s) = parse_snapshot_name(&entry?.file_name().to_string_lossy()) {
            seqs.push(s);
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Path of the snapshot covering `[0, seq)` (for tests and compaction).
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(snapshot_file_name(seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lightweb-snap-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_state() -> StoreState {
        let mut s = StoreState::default();
        s.domains.insert("a.com".into(), "A".into());
        s.domains.insert("b.org".into(), "B".into());
        s.code.insert("a.com".into(), "route {}".into());
        s.data.insert("a.com/x".into(), vec![1, 2, 3]);
        s.data.insert("a.com/empty".into(), vec![]);
        s.data.insert("b.org/big".into(), vec![0xEE; 9000]);
        s
    }

    #[test]
    fn snapshot_roundtrip() {
        let dir = scratch("roundtrip");
        let state = sample_state();
        let n = write_snapshot(&dir, 17, &state).unwrap();
        assert!(n > 9000);
        assert_eq!(read_snapshot(&dir, 17).unwrap(), state);
        assert_eq!(list_snapshots(&dir).unwrap(), vec![17]);
    }

    #[test]
    fn corrupt_snapshot_fails_loudly() {
        let dir = scratch("corrupt");
        write_snapshot(&dir, 3, &sample_state()).unwrap();
        let path = snapshot_path(&dir, 3);
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x10;
        fs::write(&path, &raw).unwrap();
        assert!(matches!(
            read_snapshot(&dir, 3),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn mislabeled_snapshot_rejected() {
        let dir = scratch("mislabel");
        write_snapshot(&dir, 5, &sample_state()).unwrap();
        fs::rename(snapshot_path(&dir, 5), snapshot_path(&dir, 9)).unwrap();
        assert!(matches!(
            read_snapshot(&dir, 9),
            Err(StoreError::Corrupt(_))
        ));
    }
}
