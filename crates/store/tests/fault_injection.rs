//! Fault-injection harness: prove recovery is exact-or-fails-loudly.
//!
//! Each scenario builds a store, injects a fault a crash could produce
//! (torn WAL tail, flipped bits, a kill mid-snapshot, a destroyed
//! snapshot after compaction), reopens, and checks that recovery either
//! reconstructs exactly the state implied by the surviving valid records
//! or refuses with a loud [`StoreError::Corrupt`] — never a silently
//! wrong universe.

use lightweb_store::snapshot::snapshot_path;
use lightweb_store::wal::wal_file_name;
use lightweb_store::{DurableStore, StoreConfig, StoreError, StoreOp, StoreState, ValueRepr};
use std::fs;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lightweb-faultinj-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg_no_auto() -> StoreConfig {
    StoreConfig {
        snapshot_every_ops: 0,
        ..StoreConfig::small_test()
    }
}

fn register(domain: &str) -> StoreOp {
    StoreOp::RegisterDomain {
        domain: domain.into(),
        publisher: "Pub".into(),
    }
}

fn publish(path: &str, value: Vec<u8>) -> StoreOp {
    StoreOp::PublishData {
        publisher: "Pub".into(),
        path: path.into(),
        value: ValueRepr::Inline(value),
    }
}

/// Build a store with `n` published values and return the expected state.
fn seed(dir: &Path, cfg: &StoreConfig, n: usize) -> StoreState {
    let (store, mut state) = DurableStore::open(dir, cfg.clone()).unwrap();
    let mut ops = vec![register("pages.net")];
    for i in 0..n {
        // Mix of inline and segment-spilled values.
        let len = if i.is_multiple_of(3) { 700 } else { 40 };
        ops.push(publish(&format!("pages.net/p{i}"), vec![i as u8; len]));
    }
    for op in &ops {
        store.append(op).unwrap();
        state.apply(op, None);
    }
    state
}

#[test]
fn truncated_wal_tail_recovers_to_last_valid_record() {
    let dir = scratch("truncate");
    let cfg = cfg_no_auto();
    let full = seed(&dir, &cfg, 6);

    // Tear the WAL mid-way through its final record, as a crash during a
    // buffered write would.
    let wal = dir.join(wal_file_name(0));
    let bytes = fs::read(&wal).unwrap();
    fs::write(&wal, &bytes[..bytes.len() - 11]).unwrap();

    let (_, recovered) = DurableStore::open(&dir, cfg).unwrap();
    let mut expected = full;
    expected.data.remove("pages.net/p5"); // the torn final op
    assert_eq!(recovered, expected, "exact recovery to last valid record");
}

#[test]
fn corrupted_wal_tail_detected_and_dropped() {
    let dir = scratch("flip-tail");
    let cfg = cfg_no_auto();
    let full = seed(&dir, &cfg, 4);

    let wal = dir.join(wal_file_name(0));
    let mut bytes = fs::read(&wal).unwrap();
    let n = bytes.len();
    bytes[n - 5] ^= 0x80; // bit rot inside the last record
    fs::write(&wal, &bytes).unwrap();

    let (_, recovered) = DurableStore::open(&dir, cfg).unwrap();
    let mut expected = full;
    expected.data.remove("pages.net/p3");
    assert_eq!(recovered, expected);
}

#[test]
fn corruption_in_wal_prefix_truncates_everything_after() {
    let dir = scratch("flip-middle");
    let cfg = cfg_no_auto();
    seed(&dir, &cfg, 6);

    // Flip a byte in the FIRST record's payload: everything after is
    // unreachable history. Truncating to "the last valid record" here is
    // record zero — recovery must not resurrect later ops whose
    // prerequisites were in the damaged prefix, and it must not crash.
    let wal = dir.join(wal_file_name(0));
    let mut bytes = fs::read(&wal).unwrap();
    bytes[14] ^= 0x01;
    fs::write(&wal, &bytes).unwrap();

    let (_, recovered) = DurableStore::open(&dir, cfg).unwrap();
    // The torn-tail rule truncates at the first invalid record: state is
    // exactly the empty prefix, with the damage surfaced in telemetry.
    assert_eq!(recovered, StoreState::default());
    assert!(
        lightweb_telemetry::registry().snapshot().counters["store.wal.torn_tail"] >= 1,
        "tail damage must be observable"
    );
}

#[test]
fn kill_mid_snapshot_leaves_old_state_intact() {
    let dir = scratch("mid-snapshot");
    let cfg = cfg_no_auto();
    let state = seed(&dir, &cfg, 5);

    // A crash mid-snapshot leaves a partial `.tmp` — the atomic-file
    // protocol never exposes it under the real name.
    let tmp = dir.join("snapshot-00000000000000ff.snap.tmp");
    fs::write(&tmp, b"half-written garbage").unwrap();

    let (store, recovered) = DurableStore::open(&dir, cfg).unwrap();
    assert_eq!(recovered, state, "tmp debris ignored");
    assert!(!tmp.exists(), "debris swept on open");
    drop(store);
}

#[test]
fn kill_between_snapshot_and_wal_rotation_recovers() {
    let dir = scratch("post-snapshot");
    let cfg = cfg_no_auto();
    let state = seed(&dir, &cfg, 5);
    let (store, _) = DurableStore::open(&dir, cfg.clone()).unwrap();
    let seq = store.seq();
    drop(store);

    // Simulate: snapshot written durably, then crash before the WAL was
    // rotated or anything deleted. The old WAL still has every record.
    lightweb_store::snapshot::write_snapshot(&dir, seq, &state).unwrap();

    let (store2, recovered) = DurableStore::open(&dir, cfg).unwrap();
    assert_eq!(recovered, state, "snapshot + already-covered WAL agree");
    assert_eq!(store2.seq(), seq);
    assert_eq!(store2.snapshot_seq(), seq);
}

#[test]
fn corrupt_snapshot_after_compaction_fails_loudly() {
    let dir = scratch("snap-corrupt");
    let cfg = cfg_no_auto();
    let state = seed(&dir, &cfg, 5);
    let (store, _) = DurableStore::open(&dir, cfg.clone()).unwrap();
    store.snapshot(&state).unwrap();
    let seq = store.seq();
    drop(store);

    // Bit rot in the only snapshot, after compaction deleted the WAL
    // history it superseded: exact recovery is impossible.
    let snap = snapshot_path(&dir, seq);
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    fs::write(&snap, &bytes).unwrap();

    match DurableStore::open(&dir, cfg) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("refusing"), "loud refusal, got: {msg}");
        }
        Ok(_) => panic!("recovered silently from an unrecoverable snapshot"),
        Err(e) => panic!("wrong error kind: {e}"),
    }
}

#[test]
fn corrupt_segment_referenced_by_wal_fails_loudly() {
    let dir = scratch("seg-corrupt");
    let cfg = cfg_no_auto();
    seed(&dir, &cfg, 4); // p0 and p3 are segment-spilled (700 B > 256 threshold)

    // Corrupt a payload byte in the first (oldest) segment file. The WAL
    // record referencing it is intact and NOT at the tail, so recovery
    // cannot truncate its way out — it must refuse.
    let seg_dir = dir.join("segments");
    let mut seg_files: Vec<_> = fs::read_dir(&seg_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    seg_files.sort();
    let seg = &seg_files[0];
    let mut bytes = fs::read(seg).unwrap();
    bytes[20] ^= 0xFF;
    fs::write(seg, &bytes).unwrap();

    match DurableStore::open(&dir, cfg) {
        Err(StoreError::Corrupt(_)) => {}
        Ok(_) => panic!("recovered silently over a corrupt segment"),
        Err(e) => panic!("wrong error kind: {e}"),
    }
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    // Crash-loop torture: after every reopen the surviving state must be
    // a prefix of the intended history, and once no more faults are
    // injected, recovery must be stable (idempotent).
    let dir = scratch("crash-loop");
    let cfg = cfg_no_auto();
    seed(&dir, &cfg, 8);

    let wal = dir.join(wal_file_name(0));
    for cut in [7, 3, 1] {
        let bytes = fs::read(&wal).unwrap();
        if bytes.len() > cut {
            fs::write(&wal, &bytes[..bytes.len() - cut]).unwrap();
        }
        let (_, state) = DurableStore::open(&dir, cfg.clone()).unwrap();
        // Every surviving value must be bit-exact.
        for (path, value) in &state.data {
            let i: usize = path.trim_start_matches("pages.net/p").parse().unwrap();
            let len = if i.is_multiple_of(3) { 700 } else { 40 };
            assert_eq!(value, &vec![i as u8; len], "value {path} corrupted");
        }
    }
    let (_, a) = DurableStore::open(&dir, cfg.clone()).unwrap();
    let (_, b) = DurableStore::open(&dir, cfg).unwrap();
    assert_eq!(a, b, "recovery is idempotent once faults stop");
}
