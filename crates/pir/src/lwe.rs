//! Single-server lattice PIR (SimplePIR-style Regev encryption).
//!
//! The paper's §2.2 notes that ZLTP could instead run on single-server PIR
//! "whose security rests only on cryptographic assumptions", at higher
//! communication and computation cost. This module implements such a scheme
//! so that the mode-comparison benchmark can demonstrate the trade-off
//! concretely.
//!
//! ## Scheme
//!
//! The database is laid out as a matrix `DB ∈ Z_p^{rows×cols}` with one
//! *column per record* and one *row per record byte* (`p = 256`). The
//! server publishes:
//!
//! * a seed for the public LWE matrix `A ∈ Z_q^{cols×n}` (`q = 2^32`), and
//! * a *hint* `H = DB·A ∈ Z_q^{rows×n}`, downloaded once per database
//!   version (the offline phase).
//!
//! To fetch record `j`, the client samples a secret `s ∈ Z_q^n` and sends
//! `qu = A·s + e + Δ·u_j ∈ Z_q^{cols}` where `Δ = q/p` and `u_j` is the
//! j-th unit vector. The server replies `ans = DB·qu ∈ Z_q^{rows}` — a
//! linear scan over the whole database, just like the DPF mode. The client
//! recovers byte `r` as `round((ans_r − ⟨H_r, s⟩)/Δ) mod p`.
//!
//! Correctness holds when the accumulated noise `|Σ_c DB[r][c]·e_c|` stays
//! below `Δ/2 = 2^23`; with ternary noise and the database sizes used here
//! that holds with overwhelming probability (same analysis as SimplePIR).
//!
//! ## Parameters
//!
//! [`LweParams::default_secure`] uses `n = 1024`, the SimplePIR-recommended
//! dimension for `q = 2^32`. [`LweParams::insecure_test`] shrinks `n` for
//! fast unit tests and is named accordingly.

use lightweb_crypto::chacha::ChaCha;
use rand::Rng;

/// LWE parameters. The modulus is fixed at `q = 2^32` (native wrapping
/// arithmetic) and the plaintext modulus at `p = 256` (one byte per cell).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LweParams {
    /// Secret dimension n.
    pub n: usize,
}

/// Scaling factor Δ = q / p = 2^24.
const DELTA_SHIFT: u32 = 24;

impl LweParams {
    /// Production-shaped parameters (n = 1024).
    pub fn default_secure() -> Self {
        Self { n: 1024 }
    }

    /// Small parameters for fast tests. **Not secure.**
    pub fn insecure_test() -> Self {
        Self { n: 64 }
    }
}

/// Errors from the LWE PIR engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LweError {
    /// Record had the wrong length.
    RecordLen {
        /// Expected record length.
        expected: usize,
        /// Actual length received.
        got: usize,
    },
    /// Query vector had the wrong length.
    QueryLen {
        /// Expected query entries (one per record column).
        expected: usize,
        /// Actual entries received.
        got: usize,
    },
    /// Answer vector had the wrong length.
    AnswerLen {
        /// Expected answer entries (one per record byte).
        expected: usize,
        /// Actual entries received.
        got: usize,
    },
    /// Requested record index is out of range.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of records in the database.
        cols: usize,
    },
    /// The hint does not match this client's dimensions.
    HintLen {
        /// Expected hint entries (record_len x n).
        expected: usize,
        /// Actual entries received.
        got: usize,
    },
}

impl std::fmt::Display for LweError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LweError::RecordLen { expected, got } => write!(f, "record length {got} != {expected}"),
            LweError::QueryLen { expected, got } => write!(f, "query length {got} != {expected}"),
            LweError::AnswerLen { expected, got } => write!(f, "answer length {got} != {expected}"),
            LweError::IndexOutOfRange { index, cols } => {
                write!(f, "record {index} out of range ({cols} records)")
            }
            LweError::HintLen { expected, got } => write!(f, "hint length {got} != {expected}"),
        }
    }
}

impl std::error::Error for LweError {}

/// Expand row `c` of the public matrix `A ∈ Z_q^{cols×n}` from the seed.
///
/// Row-seeded ChaCha20 keeps `A` out of memory on both sides: the server
/// streams it while building the hint, the client while building queries.
fn a_row(seed: &[u8; 32], c: usize, n: usize, out: &mut [u32]) {
    debug_assert_eq!(out.len(), n);
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&(c as u64).to_le_bytes());
    let cipher = ChaCha::chacha20(seed, &nonce);
    let mut block = [0u8; 64];
    let mut produced = 0usize;
    let mut counter = 0u32;
    while produced < n {
        cipher.keystream_block(counter, &mut block);
        counter += 1;
        for chunk in block.chunks_exact(4) {
            if produced == n {
                break;
            }
            out[produced] = u32::from_le_bytes(chunk.try_into().unwrap());
            produced += 1;
        }
    }
}

/// The single-server PIR database plus its published hint.
pub struct LweServer {
    params: LweParams,
    record_len: usize,
    cols: usize,
    /// Row-major `rows × cols` byte matrix: `db[r * cols + c]` = byte `r` of
    /// record `c`.
    db: Vec<u8>,
    seed: [u8; 32],
    /// `rows × n` hint, row-major.
    hint: Vec<u32>,
}

impl LweServer {
    /// Build a server over `records` (all of length `record_len`),
    /// precomputing the hint (the offline phase).
    pub fn new(
        params: LweParams,
        record_len: usize,
        records: Vec<Vec<u8>>,
    ) -> Result<Self, LweError> {
        assert!(record_len > 0, "record_len must be positive");
        let cols = records.len();
        let rows = record_len;
        let mut db = vec![0u8; rows * cols];
        for (c, rec) in records.iter().enumerate() {
            if rec.len() != record_len {
                return Err(LweError::RecordLen {
                    expected: record_len,
                    got: rec.len(),
                });
            }
            for (r, &byte) in rec.iter().enumerate() {
                db[r * cols + c] = byte;
            }
        }
        let seed = lightweb_crypto::random_key();

        // hint = DB · A, streaming A row by row (one row per column c).
        let mut hint = vec![0u32; rows * params.n];
        let mut row = vec![0u32; params.n];
        for c in 0..cols {
            a_row(&seed, c, params.n, &mut row);
            for r in 0..rows {
                let d = db[r * cols + c] as u32;
                if d == 0 {
                    continue;
                }
                let h = &mut hint[r * params.n..(r + 1) * params.n];
                for (hj, aj) in h.iter_mut().zip(row.iter()) {
                    *hj = hj.wrapping_add(d.wrapping_mul(*aj));
                }
            }
        }

        Ok(Self {
            params,
            record_len,
            cols,
            db,
            seed,
            hint,
        })
    }

    /// The LWE parameters this server was built with.
    pub fn params(&self) -> LweParams {
        self.params
    }

    /// The seed for the public matrix `A` (published to clients).
    pub fn public_seed(&self) -> [u8; 32] {
        self.seed
    }

    /// Number of records (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The hint `DB·A`, downloaded once per database version.
    pub fn hint(&self) -> &[u32] {
        &self.hint
    }

    /// Size in bytes of the hint download.
    pub fn hint_bytes(&self) -> usize {
        self.hint.len() * 4
    }

    /// Answer a query: `ans = DB · qu`. One pass over every database byte —
    /// the same O(N) online cost as the DPF mode, but with 32-bit
    /// multiply-accumulate instead of XOR.
    pub fn answer(&self, query: &[u32]) -> Result<Vec<u32>, LweError> {
        if query.len() != self.cols {
            return Err(LweError::QueryLen {
                expected: self.cols,
                got: query.len(),
            });
        }
        let rows = self.record_len;
        let mut ans = vec![0u32; rows];
        for (r, a) in ans.iter_mut().enumerate() {
            let row = &self.db[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0u32;
            for (d, q) in row.iter().zip(query.iter()) {
                acc = acc.wrapping_add((*d as u32).wrapping_mul(*q));
            }
            *a = acc;
        }
        Ok(ans)
    }
}

/// A prepared client query: the encrypted selection vector plus the secret
/// needed to decrypt the answer.
pub struct LweQuery {
    /// The vector sent to the server.
    pub payload: Vec<u32>,
    secret: Vec<u32>,
    index: usize,
}

impl LweQuery {
    /// Upload size in bytes.
    pub fn upload_bytes(&self) -> usize {
        self.payload.len() * 4
    }
}

/// Client side of the single-server scheme.
pub struct LweClient {
    params: LweParams,
    seed: [u8; 32],
    cols: usize,
    record_len: usize,
}

impl LweClient {
    /// Create a client from the server's published metadata.
    pub fn new(params: LweParams, seed: [u8; 32], cols: usize, record_len: usize) -> Self {
        Self {
            params,
            seed,
            cols,
            record_len,
        }
    }

    /// Build a query for record `index`.
    pub fn query(&self, index: usize) -> LweQuery {
        assert!(index < self.cols, "record index out of range");
        let mut rng = rand::thread_rng();
        let secret: Vec<u32> = (0..self.params.n).map(|_| rng.gen()).collect();
        let mut payload = vec![0u32; self.cols];
        let mut row = vec![0u32; self.params.n];
        for (c, p) in payload.iter_mut().enumerate() {
            a_row(&self.seed, c, self.params.n, &mut row);
            let mut acc = 0u32;
            for (a, s) in row.iter().zip(secret.iter()) {
                acc = acc.wrapping_add(a.wrapping_mul(*s));
            }
            // Ternary noise: -1, 0, +1 with probabilities 1/4, 1/2, 1/4.
            let e: i32 = match rng.gen_range(0..4u8) {
                0 => -1,
                1 => 1,
                _ => 0,
            };
            acc = acc.wrapping_add(e as u32);
            if c == index {
                acc = acc.wrapping_add(1u32 << DELTA_SHIFT);
            }
            *p = acc;
        }
        LweQuery {
            payload,
            secret,
            index,
        }
    }

    /// Decrypt the server's answer into the record bytes.
    pub fn decode(
        &self,
        query: &LweQuery,
        hint: &[u32],
        answer: &[u32],
    ) -> Result<Vec<u8>, LweError> {
        let rows = self.record_len;
        if hint.len() != rows * self.params.n {
            return Err(LweError::HintLen {
                expected: rows * self.params.n,
                got: hint.len(),
            });
        }
        if answer.len() != rows {
            return Err(LweError::AnswerLen {
                expected: rows,
                got: answer.len(),
            });
        }
        let mut out = vec![0u8; rows];
        for r in 0..rows {
            let h = &hint[r * self.params.n..(r + 1) * self.params.n];
            let mut hs = 0u32;
            for (a, s) in h.iter().zip(query.secret.iter()) {
                hs = hs.wrapping_add(a.wrapping_mul(*s));
            }
            let noisy = answer[r].wrapping_sub(hs);
            // Round to the nearest multiple of Δ; the shift reduces mod p.
            let rounded = noisy.wrapping_add(1u32 << (DELTA_SHIFT - 1)) >> DELTA_SHIFT;
            out[r] = (rounded & 0xFF) as u8;
        }
        Ok(out)
    }

    /// Which record a query targets (client-side bookkeeping).
    pub fn query_index(query: &LweQuery) -> usize {
        query.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_records(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..len).map(|b| ((b * 17 + i * 101) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn end_to_end_retrieval() {
        let params = LweParams::insecure_test();
        let records = make_records(32, 48);
        let server = LweServer::new(params, 48, records.clone()).unwrap();
        let client = LweClient::new(params, server.public_seed(), server.cols(), 48);
        for idx in [0usize, 1, 15, 31] {
            let q = client.query(idx);
            let ans = server.answer(&q.payload).unwrap();
            assert_eq!(
                client.decode(&q, server.hint(), &ans).unwrap(),
                records[idx]
            );
        }
    }

    #[test]
    fn payload_hides_index_size_wise() {
        // Queries for different indices have identical length and should
        // not be trivially distinguishable (both look uniform).
        let params = LweParams::insecure_test();
        let server = LweServer::new(params, 8, make_records(16, 8)).unwrap();
        let client = LweClient::new(params, server.public_seed(), server.cols(), 8);
        let q0 = client.query(0);
        let q1 = client.query(15);
        assert_eq!(q0.payload.len(), q1.payload.len());
        assert_eq!(q0.upload_bytes(), 16 * 4);
    }

    #[test]
    fn wrong_sizes_rejected() {
        let params = LweParams::insecure_test();
        let server = LweServer::new(params, 8, make_records(4, 8)).unwrap();
        assert!(matches!(
            server.answer(&[0u32; 3]),
            Err(LweError::QueryLen {
                expected: 4,
                got: 3
            })
        ));
        let client = LweClient::new(params, server.public_seed(), 4, 8);
        let q = client.query(0);
        let ans = server.answer(&q.payload).unwrap();
        assert!(matches!(
            client.decode(&q, &ans[..1], &ans),
            Err(LweError::HintLen { .. })
        ));
        assert!(matches!(
            client.decode(&q, server.hint(), &ans[..7]),
            Err(LweError::AnswerLen {
                expected: 8,
                got: 7
            })
        ));
    }

    #[test]
    fn ragged_records_rejected() {
        let params = LweParams::insecure_test();
        let mut records = make_records(4, 8);
        records[2].pop();
        assert!(matches!(
            LweServer::new(params, 8, records),
            Err(LweError::RecordLen {
                expected: 8,
                got: 7
            })
        ));
    }

    #[test]
    fn hint_reused_across_queries() {
        // The hint is per-database, not per-query: many queries decode
        // against the same hint.
        let params = LweParams::insecure_test();
        let records = make_records(10, 16);
        let server = LweServer::new(params, 16, records.clone()).unwrap();
        let client = LweClient::new(params, server.public_seed(), server.cols(), 16);
        let hint = server.hint().to_vec();
        for (idx, record) in records.iter().enumerate() {
            let q = client.query(idx);
            let ans = server.answer(&q.payload).unwrap();
            assert_eq!(&client.decode(&q, &hint, &ans).unwrap(), record);
        }
    }

    #[test]
    fn communication_is_larger_than_dpf_mode() {
        // The paper's claim: single-server cryptographic PIR costs more
        // communication. At 2^10 records the LWE upload alone (4 bytes per
        // record) already exceeds a DPF key pair (~1 KiB at d = 22).
        let params = LweParams::insecure_test();
        let server = LweServer::new(params, 8, make_records(1024, 8)).unwrap();
        let client = LweClient::new(params, server.public_seed(), server.cols(), 8);
        let q = client.query(0);
        assert!(q.upload_bytes() >= 4096);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_index_out_of_range_panics() {
        let params = LweParams::insecure_test();
        let server = LweServer::new(params, 8, make_records(4, 8)).unwrap();
        let client = LweClient::new(params, server.public_seed(), 4, 8);
        let _ = client.query(4);
    }
}
