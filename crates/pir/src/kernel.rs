//! Word-wide, cache-blocked, batched XOR scan kernels.
//!
//! The scan is the server's dominant per-request cost (§5.1: 103 of
//! 167 ms at 1 GiB) and is memory-bandwidth bound: every record is read
//! once per sweep and conditionally XORed into an accumulator. These
//! kernels restructure that inner loop around three ideas:
//!
//! 1. **Word-wide XOR over a padded layout.** The database buffer is
//!    64-byte aligned and every record stride is padded to a multiple of 8
//!    (see [`two_server::PirServer`](crate::two_server::PirServer)), so
//!    the kernel operates on whole `u64` words — no per-record remainder
//!    handling, no unaligned split loads. XOR and AND-with-broadcast-mask
//!    are byte-order agnostic, so native word ops are portable.
//! 2. **One sweep per batch.** All queries' accumulators advance while a
//!    record is resident in L1 (records outermost, queries over the
//!    resident block), so the data is streamed from DRAM once per batch
//!    instead of once per query — the amortization that gives batched PIR
//!    its throughput (§5.1, and ZipPIR's single-server trick).
//! 3. **Runtime backend selection.** [`KernelBackend::detect`] picks AVX2
//!    when the CPU has it (`is_x86_feature_detected!`), a portable
//!    `u64` kernel otherwise, and a byte-at-a-time scalar reference is
//!    kept for differential testing and exotic targets. The
//!    `LIGHTWEB_SCAN_KERNEL` environment variable (`scalar | wide | avx2 |
//!    auto`) overrides detection.
//!
//! All backends are branch-free in the record loop: DPF share bits are
//! ~50% dense, so a conditional skip would mispredict half the time; a
//! broadcast mask (`0x00…0` or `0xFF…F`) keeps the pipeline full and, per
//! record, does exactly the same work for every query — which is also what
//! keeps the scan's timing independent of the queried slot.

use std::ops::Range;
use std::sync::OnceLock;

/// Environment variable overriding kernel auto-detection:
/// `scalar | wide | avx2 | auto`.
pub const SCAN_KERNEL_ENV: &str = "LIGHTWEB_SCAN_KERNEL";

/// A scan kernel implementation, selectable at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelBackend {
    /// Byte-at-a-time portable reference. Slowest, obviously correct; the
    /// equivalence oracle the other backends are tested against.
    Scalar,
    /// `u64`-word kernel over the padded layout. Portable; the compiler
    /// autovectorizes the masked-XOR loop on most targets.
    Wide,
    /// 256-bit AVX2 kernel (`std::arch`), used only when the CPU reports
    /// the feature; falls back to [`KernelBackend::Wide`] elsewhere.
    Avx2,
}

fn avx2_supported() -> bool {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        false
    }
}

impl KernelBackend {
    /// Every backend, for test matrices and benchmarks.
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Scalar,
        KernelBackend::Wide,
        KernelBackend::Avx2,
    ];

    /// The backend's name as accepted by [`SCAN_KERNEL_ENV`].
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Wide => "wide",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// Parse an explicit backend name (`auto` is not a backend; it is
    /// handled by [`KernelBackend::detect`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(KernelBackend::Scalar),
            "wide" => Some(KernelBackend::Wide),
            "avx2" => Some(KernelBackend::Avx2),
            _ => None,
        }
    }

    /// Whether this backend can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Scalar | KernelBackend::Wide => true,
            KernelBackend::Avx2 => avx2_supported(),
        }
    }

    /// The fastest backend the CPU supports.
    pub fn fastest_supported() -> Self {
        if avx2_supported() {
            KernelBackend::Avx2
        } else {
            KernelBackend::Wide
        }
    }

    /// Resolve the backend to use: the [`SCAN_KERNEL_ENV`] override when
    /// set (falling back, with a one-time warning, if it names an
    /// unsupported or unknown kernel), otherwise the fastest supported.
    pub fn detect() -> Self {
        static WARNED: OnceLock<()> = OnceLock::new();
        match std::env::var(SCAN_KERNEL_ENV) {
            Ok(v) if v.is_empty() || v == "auto" => Self::fastest_supported(),
            Ok(v) => match Self::parse(&v) {
                Some(k) if k.is_supported() => k,
                Some(k) => {
                    WARNED.get_or_init(|| {
                        eprintln!(
                            "lightweb-pir: {SCAN_KERNEL_ENV}={} unsupported on this CPU, \
                             using {}",
                            k.name(),
                            Self::fastest_supported().name()
                        );
                    });
                    Self::fastest_supported()
                }
                None => {
                    WARNED.get_or_init(|| {
                        eprintln!(
                            "lightweb-pir: unknown {SCAN_KERNEL_ENV}={v:?} \
                             (expected scalar|wide|avx2|auto), using {}",
                            Self::fastest_supported().name()
                        );
                    });
                    Self::fastest_supported()
                }
            },
            Err(_) => Self::fastest_supported(),
        }
    }
}

/// View a word slice as its bytes.
pub(crate) fn words_as_bytes(words: &[u64]) -> &[u8] {
    // SAFETY: `u64` has no padding, every byte pattern is valid, and `u8`
    // alignment is never stricter.
    unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, words.len() * 8) }
}

/// Mutable variant of [`words_as_bytes`].
pub(crate) fn words_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
    // SAFETY: as above; writing arbitrary bytes into a `u64` is sound.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8) }
}

/// The query's share bit for `slot`, widened to an all-zero / all-one mask.
#[inline(always)]
fn mask_for(row: &[u8], slot: u64) -> u64 {
    (((row[(slot / 8) as usize] >> (slot % 8)) & 1) as u64).wrapping_neg()
}

/// XOR-accumulate records `records` (positions in the occupied-slot list,
/// ascending-slot order) into per-query accumulators — one sweep of the
/// data serving the whole batch.
///
/// * `data` — the stride-padded record buffer as words; record `i`
///   occupies words `[i * stride_words, (i + 1) * stride_words)`.
/// * `slots` — the occupied slots, parallel to the record positions.
/// * `rows` — one packed share bit vector per query (bit `x` at byte
///   `x / 8`, LSB-first), each covering every slot in the domain.
/// * `acc` — `rows.len() * stride_words` accumulator words, XORed in
///   place (callers pass zeroed accumulators for a fresh scan, or chain
///   partial scans by reusing them).
pub fn scan_batch_kernel(
    backend: KernelBackend,
    data: &[u64],
    stride_words: usize,
    slots: &[u64],
    records: Range<usize>,
    rows: &[&[u8]],
    acc: &mut [u64],
) {
    assert!(records.end <= slots.len(), "record range outside database");
    assert!(
        data.len() >= records.end * stride_words,
        "data buffer shorter than record range"
    );
    assert_eq!(
        acc.len(),
        rows.len() * stride_words,
        "accumulator must hold stride_words words per query"
    );
    if rows.is_empty() || records.is_empty() || stride_words == 0 {
        return;
    }
    match backend {
        KernelBackend::Scalar => scan_scalar(data, stride_words, slots, records, rows, acc),
        KernelBackend::Wide => scan_wide(data, stride_words, slots, records, rows, acc),
        KernelBackend::Avx2 => {
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            if avx2_supported() {
                // SAFETY: AVX2 presence just checked.
                unsafe { avx2::scan(data, stride_words, slots, records, rows, acc) };
                return;
            }
            scan_wide(data, stride_words, slots, records, rows, acc)
        }
    }
}

/// Portable reference: byte-at-a-time masked XOR. Kept deliberately
/// simple — this is the oracle the proptest equivalence suite holds the
/// fast kernels to.
fn scan_scalar(
    data: &[u64],
    stride_words: usize,
    slots: &[u64],
    records: Range<usize>,
    rows: &[&[u8]],
    acc: &mut [u64],
) {
    let stride = stride_words * 8;
    let data_bytes = words_as_bytes(data);
    let acc_bytes = words_as_bytes_mut(acc);
    for i in records {
        let slot = slots[i];
        let rec = &data_bytes[i * stride..(i + 1) * stride];
        for (q, row) in rows.iter().enumerate() {
            let mask = ((row[(slot / 8) as usize] >> (slot % 8)) & 1).wrapping_neg();
            let a = &mut acc_bytes[q * stride..(q + 1) * stride];
            for (dst, src) in a.iter_mut().zip(rec.iter()) {
                *dst ^= src & mask;
            }
        }
    }
}

/// One record's masked XOR into one query's accumulator, blocked in
/// cache-line (8-word) chunks so the compiler unrolls the body into a
/// pair of 256-bit ops per block instead of a thin 1×-vector loop.
#[inline(always)]
fn xor_masked_words(a: &mut [u64], rec: &[u64], mask: u64) {
    let mut a_it = a.chunks_exact_mut(8);
    let mut r_it = rec.chunks_exact(8);
    for (ab, rb) in (&mut a_it).zip(&mut r_it) {
        for k in 0..8 {
            ab[k] ^= rb[k] & mask;
        }
    }
    for (dst, src) in a_it.into_remainder().iter_mut().zip(r_it.remainder()) {
        *dst ^= src & mask;
    }
}

/// Portable fast path: whole-`u64` masked XOR. Each record block stays
/// resident (L1 at typical bucket sizes) while every query in the batch
/// consumes it.
fn scan_wide(
    data: &[u64],
    stride_words: usize,
    slots: &[u64],
    records: Range<usize>,
    rows: &[&[u8]],
    acc: &mut [u64],
) {
    let sw = stride_words;
    if rows.len() == 1 {
        // Single-query fast path: no mask buffer, one fused loop.
        let row = rows[0];
        let acc1 = &mut acc[..sw];
        for i in records {
            let mask = mask_for(row, slots[i]);
            xor_masked_words(acc1, &data[i * sw..(i + 1) * sw], mask);
        }
        return;
    }
    let mut masks = vec![0u64; rows.len()];
    for i in records {
        let slot = slots[i];
        for (m, row) in masks.iter_mut().zip(rows.iter()) {
            *m = mask_for(row, slot);
        }
        let rec = &data[i * sw..(i + 1) * sw];
        for (q, &mask) in masks.iter().enumerate() {
            xor_masked_words(&mut acc[q * sw..(q + 1) * sw], rec, mask);
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    use std::ops::Range;

    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// AVX2 kernel: 256-bit masked XOR, 4 words per op. Loads are
    /// `loadu` — the buffers are 64-byte / 8-byte aligned by
    /// construction, and unaligned load instructions on aligned
    /// addresses cost nothing on every AVX2-era core.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan(
        data: &[u64],
        stride_words: usize,
        slots: &[u64],
        records: Range<usize>,
        rows: &[&[u8]],
        acc: &mut [u64],
    ) {
        let sw = stride_words;
        let mut masks = vec![0u64; rows.len()];
        for i in records {
            let slot = slots[i];
            for (m, row) in masks.iter_mut().zip(rows.iter()) {
                *m = super::mask_for(row, slot);
            }
            let rec = &data[i * sw..(i + 1) * sw];
            for (q, &mask) in masks.iter().enumerate() {
                let a = &mut acc[q * sw..(q + 1) * sw];
                let m = _mm256_set1_epi64x(mask as i64);
                let mut w = 0usize;
                // 4× unrolled: 16 words (two cache lines) per iteration,
                // four independent load/and/xor/store chains in flight.
                while w + 16 <= sw {
                    let rp = rec.as_ptr().add(w) as *const __m256i;
                    let ap = a.as_ptr().add(w) as *const __m256i;
                    let x0 = _mm256_xor_si256(
                        _mm256_loadu_si256(ap),
                        _mm256_and_si256(_mm256_loadu_si256(rp), m),
                    );
                    let x1 = _mm256_xor_si256(
                        _mm256_loadu_si256(ap.add(1)),
                        _mm256_and_si256(_mm256_loadu_si256(rp.add(1)), m),
                    );
                    let x2 = _mm256_xor_si256(
                        _mm256_loadu_si256(ap.add(2)),
                        _mm256_and_si256(_mm256_loadu_si256(rp.add(2)), m),
                    );
                    let x3 = _mm256_xor_si256(
                        _mm256_loadu_si256(ap.add(3)),
                        _mm256_and_si256(_mm256_loadu_si256(rp.add(3)), m),
                    );
                    let out = a.as_mut_ptr().add(w) as *mut __m256i;
                    _mm256_storeu_si256(out, x0);
                    _mm256_storeu_si256(out.add(1), x1);
                    _mm256_storeu_si256(out.add(2), x2);
                    _mm256_storeu_si256(out.add(3), x3);
                    w += 16;
                }
                while w + 4 <= sw {
                    let src = _mm256_loadu_si256(rec.as_ptr().add(w) as *const __m256i);
                    let dst = _mm256_loadu_si256(a.as_ptr().add(w) as *const __m256i);
                    let x = _mm256_xor_si256(dst, _mm256_and_si256(src, m));
                    _mm256_storeu_si256(a.as_mut_ptr().add(w) as *mut __m256i, x);
                    w += 4;
                }
                while w < sw {
                    a[w] ^= rec[w] & mask;
                    w += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        n_records: usize,
        stride_words: usize,
        batch: usize,
    ) -> (Vec<u64>, Vec<u64>, Vec<Vec<u8>>) {
        let domain = (n_records as u64 * 3 + 8).next_power_of_two();
        let slots: Vec<u64> = (0..n_records as u64).map(|i| i * 3 + 1).collect();
        let data: Vec<u64> = (0..n_records * stride_words)
            .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
            .collect();
        let row_bytes = (domain as usize).div_ceil(8);
        let rows: Vec<Vec<u8>> = (0..batch)
            .map(|q| {
                (0..row_bytes)
                    .map(|b| ((b * 131 + q * 17 + 7) % 251) as u8)
                    .collect()
            })
            .collect();
        (data, slots, rows)
    }

    #[test]
    fn backends_agree_on_random_inputs() {
        for (n, sw, batch) in [
            (13usize, 3usize, 1usize),
            (40, 16, 5),
            (7, 1, 3),
            (64, 4, 16),
        ] {
            let (data, slots, rows) = sample(n, sw, batch);
            let row_refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
            let mut reference = vec![0u64; batch * sw];
            scan_batch_kernel(
                KernelBackend::Scalar,
                &data,
                sw,
                &slots,
                0..n,
                &row_refs,
                &mut reference,
            );
            for backend in KernelBackend::ALL {
                let mut acc = vec![0u64; batch * sw];
                scan_batch_kernel(backend, &data, sw, &slots, 0..n, &row_refs, &mut acc);
                assert_eq!(
                    acc,
                    reference,
                    "backend {} n={n} sw={sw} b={batch}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_range_are_no_ops() {
        let (data, slots, rows) = sample(8, 2, 2);
        let row_refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
        for backend in KernelBackend::ALL {
            let mut acc: Vec<u64> = Vec::new();
            scan_batch_kernel(backend, &data, 2, &slots, 0..8, &[], &mut acc);
            let mut acc = vec![7u64; 2 * 2];
            scan_batch_kernel(backend, &data, 2, &slots, 3..3, &row_refs, &mut acc);
            assert_eq!(acc, vec![7u64; 4]);
        }
    }

    #[test]
    fn partial_ranges_xor_to_full_scan() {
        let (data, slots, rows) = sample(21, 5, 4);
        let row_refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
        for backend in KernelBackend::ALL {
            let mut full = vec![0u64; 4 * 5];
            scan_batch_kernel(backend, &data, 5, &slots, 0..21, &row_refs, &mut full);
            for split in [0usize, 1, 10, 20, 21] {
                let mut acc = vec![0u64; 4 * 5];
                scan_batch_kernel(backend, &data, 5, &slots, 0..split, &row_refs, &mut acc);
                scan_batch_kernel(backend, &data, 5, &slots, split..21, &row_refs, &mut acc);
                assert_eq!(acc, full, "{} split {split}", backend.name());
            }
        }
    }

    #[test]
    fn names_parse_round_trip_and_detection_is_supported() {
        for b in KernelBackend::ALL {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
        }
        assert_eq!(KernelBackend::parse("auto"), None);
        assert_eq!(KernelBackend::parse("neon"), None);
        assert!(KernelBackend::detect().is_supported());
        assert!(KernelBackend::fastest_supported().is_supported());
        assert!(KernelBackend::Scalar.is_supported());
        assert!(KernelBackend::Wide.is_supported());
    }
}
