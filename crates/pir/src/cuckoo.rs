//! Cuckoo hashing: the paper's second collision mitigation (§5.1).
//!
//! Instead of renaming a colliding key, the universe can give every key
//! *two* candidate slots (two independent hash functions) and let a cuckoo
//! insertion procedure find an assignment in which every stored key owns
//! one of its candidates. The client then "probes several locations per
//! request": it issues one PIR query per candidate slot and picks the
//! response whose embedded key fingerprint matches.
//!
//! With two hash functions, cuckoo tables succeed with high probability up
//! to ~50% load — a far better occupancy/collision trade-off than the plain
//! single-hash map (whose fresh-key collision probability is already ~22%
//! at 25% load, per §5.1).

use lightweb_crypto::SipHash24;
use std::collections::HashMap;

/// Number of candidate slots per key (two hash functions).
pub const CUCKOO_WAYS: usize = 2;

/// Maximum eviction-chain length before the build is declared failed and
/// the caller should re-key or grow the domain.
const MAX_EVICTIONS: usize = 500;

/// Errors building a cuckoo assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CuckooError {
    /// Insertion exceeded the eviction budget — the table is too full for
    /// this hash-key pair; re-key or grow the domain.
    InsertionFailed {
        /// Index of the key whose insertion failed.
        key_index: usize,
    },
    /// Two identical keys were inserted.
    DuplicateKey(usize),
}

impl std::fmt::Display for CuckooError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CuckooError::InsertionFailed { key_index } => {
                write!(f, "cuckoo insertion failed for key index {key_index}")
            }
            CuckooError::DuplicateKey(i) => write!(f, "duplicate key at index {i}"),
        }
    }
}

impl std::error::Error for CuckooError {}

/// The pair of hash functions defining everyone's candidate slots.
#[derive(Clone, Copy, Debug)]
pub struct CuckooHasher {
    h: [SipHash24; CUCKOO_WAYS],
    domain_bits: u32,
}

impl CuckooHasher {
    /// Derive the two hash functions from a 16-byte universe key.
    pub fn new(hash_key: &[u8; 16], domain_bits: u32) -> Self {
        assert!((1..=40).contains(&domain_bits), "domain_bits out of range");
        let k0 = u64::from_le_bytes(hash_key[..8].try_into().unwrap());
        let k1 = u64::from_le_bytes(hash_key[8..].try_into().unwrap());
        Self {
            h: [
                SipHash24::from_halves(k0, k1),
                // Independent second function via constant tweaks.
                SipHash24::from_halves(k0 ^ 0x9e37_79b9_7f4a_7c15, k1 ^ 0x6a09_e667_f3bc_c908),
            ],
            domain_bits,
        }
    }

    /// Both candidate slots for a key. The two candidates may coincide for
    /// unlucky keys; the insertion procedure handles that.
    pub fn candidates(&self, key: &[u8]) -> [u64; CUCKOO_WAYS] {
        [
            self.h[0].hash_to_domain(key, self.domain_bits),
            self.h[1].hash_to_domain(key, self.domain_bits),
        ]
    }

    /// log2 of the slot domain.
    pub fn domain_bits(&self) -> u32 {
        self.domain_bits
    }
}

/// A completed cuckoo assignment: each key owns exactly one of its
/// candidate slots.
#[derive(Clone, Debug)]
pub struct CuckooAssignment {
    /// `assignment[i]` is the slot assigned to input key `i`.
    pub slots: Vec<u64>,
    /// Total evictions performed while building (a load-health metric).
    pub evictions: usize,
}

/// Build a cuckoo assignment for `keys` under `hasher`.
///
/// Classic random-walk insertion: place each key in one of its candidates,
/// evicting the current occupant to its alternate slot when both are full.
pub fn build_assignment(
    hasher: &CuckooHasher,
    keys: &[&[u8]],
) -> Result<CuckooAssignment, CuckooError> {
    // slot -> index of key occupying it
    let mut occupant: HashMap<u64, usize> = HashMap::with_capacity(keys.len() * 2);
    let mut assigned: Vec<Option<u64>> = vec![None; keys.len()];
    let mut seen = std::collections::HashSet::with_capacity(keys.len());
    let mut total_evictions = 0usize;

    for (i, key) in keys.iter().enumerate() {
        if !seen.insert(*key) {
            return Err(CuckooError::DuplicateKey(i));
        }
        // Textbook cuckoo walk: place the key in an empty candidate if one
        // exists; otherwise evict the occupant of the first candidate, which
        // is then reinserted into its *alternate* slot, cascading.
        let cands = hasher.candidates(key);
        if let Some(&slot) = cands.iter().find(|s| !occupant.contains_key(s)) {
            occupant.insert(slot, i);
            assigned[i] = Some(slot);
            continue;
        }
        let mut current = i;
        let mut target = cands[0];
        let mut steps = 0usize;
        loop {
            if steps > MAX_EVICTIONS {
                return Err(CuckooError::InsertionFailed { key_index: i });
            }
            match occupant.insert(target, current) {
                None => {
                    assigned[current] = Some(target);
                    break;
                }
                Some(victim) => {
                    assigned[current] = Some(target);
                    assigned[victim] = None;
                    // The victim moves to its other candidate slot.
                    let vc = hasher.candidates(keys[victim]);
                    target = if vc[0] == target { vc[1] } else { vc[0] };
                    current = victim;
                    steps += 1;
                    total_evictions += 1;
                }
            }
        }
    }

    Ok(CuckooAssignment {
        slots: assigned
            .into_iter()
            .map(|s| s.expect("all keys placed"))
            .collect(),
        evictions: total_evictions,
    })
}

/// An 8-byte fingerprint embedded at the front of each record so the client
/// can tell which of its `CUCKOO_WAYS` probes hit the real key.
pub fn key_fingerprint(hasher: &CuckooHasher, key: &[u8]) -> [u8; 8] {
    // A third derived function, independent of the slot hashes.
    let fp = SipHash24::from_halves(0x5bf0_3635_dead_beef, 0x1234_5678_9abc_def0);
    let mut tagged = Vec::with_capacity(key.len() + 1);
    tagged.push(hasher.domain_bits as u8);
    tagged.extend_from_slice(key);
    fp.hash(&tagged).to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("example.com/page/{i}").into_bytes())
            .collect()
    }

    #[test]
    fn assignment_places_every_key_in_a_candidate() {
        let hasher = CuckooHasher::new(&[5u8; 16], 10);
        let owned = keys(400); // ~39% load of 1024 slots
        let refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let asg = build_assignment(&hasher, &refs).unwrap();
        assert_eq!(asg.slots.len(), refs.len());
        let unique: std::collections::HashSet<_> = asg.slots.iter().collect();
        assert_eq!(unique.len(), refs.len(), "slots must be distinct");
        for (key, slot) in refs.iter().zip(asg.slots.iter()) {
            assert!(hasher.candidates(key).contains(slot));
        }
    }

    #[test]
    fn cuckoo_beats_single_hash_at_same_load() {
        // At 2^12 keys in 2^13 slots (50% load) a single hash map collides
        // massively; cuckoo still succeeds.
        let hasher = CuckooHasher::new(&[6u8; 16], 13);
        let owned = keys(1 << 12);
        let refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let asg = build_assignment(&hasher, &refs);
        assert!(asg.is_ok(), "cuckoo failed at 50% load");

        let single = crate::keyword::KeywordMap::new(&[6u8; 16], 13);
        let (_, collisions) = single.assign_all(refs.iter().copied());
        assert!(
            collisions.len() > 500,
            "single hash unexpectedly clean: {} collisions",
            collisions.len()
        );
    }

    #[test]
    fn duplicate_key_rejected() {
        let hasher = CuckooHasher::new(&[7u8; 16], 8);
        let e = build_assignment(&hasher, &[b"a", b"b", b"a"]).unwrap_err();
        assert_eq!(e, CuckooError::DuplicateKey(2));
    }

    #[test]
    fn overfull_table_fails_cleanly() {
        // 100 keys in 64 slots cannot fit.
        let hasher = CuckooHasher::new(&[8u8; 16], 6);
        let owned = keys(100);
        let refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        assert!(matches!(
            build_assignment(&hasher, &refs),
            Err(CuckooError::InsertionFailed { .. })
        ));
    }

    #[test]
    fn fingerprints_distinguish_keys() {
        let hasher = CuckooHasher::new(&[9u8; 16], 10);
        let fp1 = key_fingerprint(&hasher, b"nytimes.com/a");
        let fp2 = key_fingerprint(&hasher, b"nytimes.com/b");
        assert_ne!(fp1, fp2);
        assert_eq!(fp1, key_fingerprint(&hasher, b"nytimes.com/a"));
    }

    #[test]
    fn candidates_are_deterministic() {
        let hasher = CuckooHasher::new(&[10u8; 16], 12);
        assert_eq!(hasher.candidates(b"k"), hasher.candidates(b"k"));
        // The two hash functions should disagree on most keys.
        let same = (0..128)
            .filter(|i| {
                let c = hasher.candidates(format!("x{i}").as_bytes());
                c[0] == c[1]
            })
            .count();
        assert!(same < 10, "{same}/128 keys had coinciding candidates");
    }
}
