//! Two-server DPF-based PIR: the prototype mode the paper benchmarks.
//!
//! The server holds key-value pairs where the key is a slot in the DPF
//! output domain of size `2^d` and the value is a fixed-length record.
//! Answering a query means (1) evaluating the client's DPF key over the
//! full domain — "DPF evaluation", 64 of 167 ms in §5.1 — and (2) XORing
//! together the records whose slot bit is set — "scanning over the data",
//! the remaining 103 ms. XORing the two servers' answers yields the record
//! in the queried slot.
//!
//! The scan runs through the word-wide kernel layer ([`crate::kernel`]):
//! records live in a 64-byte-aligned buffer with the stride padded to a
//! word multiple, each record is XORed branch-free under a broadcast mask
//! (the paper's prototype used AVX intrinsics for the same loop — here the
//! AVX2 path is selected at runtime), and a whole batch of queries is
//! answered in one sweep of the data.
//!
//! Batching (§5.1): evaluating `b` DPF keys up front and answering all of
//! them in a *single* pass over the data raises throughput at the cost of
//! latency, because the scan — the dominant term — is paid once per batch
//! rather than once per request. [`PirServer::answer_batch`] implements
//! this; the `e2_batching` bench reproduces the paper's 0.51 s / 2 req/s
//! vs 2.6 s / 6 req/s trade-off curve.

use crate::aligned::AlignedBuf;
use crate::kernel::{self, KernelBackend};
use lightweb_dpf::{gen, BitMatrix, DpfKey, DpfParams};
use std::ops::Range;

/// Errors from the PIR engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PirError {
    /// A record had the wrong length for this database.
    RecordLen {
        /// The database's fixed record length.
        expected: usize,
        /// The offending record's length.
        got: usize,
    },
    /// A slot index was outside the DPF domain.
    SlotOutOfRange {
        /// The offending slot.
        slot: u64,
        /// The domain size it must be below.
        domain: u64,
    },
    /// Two records were assigned the same slot (keyword collision that the
    /// publisher must resolve by renaming, per §5.1).
    DuplicateSlot(u64),
    /// The query key's parameters do not match the database.
    ParamsMismatch,
    /// Two answers being combined had different lengths.
    AnswerLen,
}

impl std::fmt::Display for PirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PirError::RecordLen { expected, got } => {
                write!(
                    f,
                    "record length {got} != database record length {expected}"
                )
            }
            PirError::SlotOutOfRange { slot, domain } => {
                write!(f, "slot {slot} outside domain of size {domain}")
            }
            PirError::DuplicateSlot(s) => write!(f, "duplicate slot {s}"),
            PirError::ParamsMismatch => write!(f, "query parameters do not match database"),
            PirError::AnswerLen => write!(f, "answers have mismatched lengths"),
        }
    }
}

impl std::error::Error for PirError {}

/// One (logical) PIR server: the slot-indexed record store plus the scan.
///
/// In the two-server protocol both servers hold *identical* databases; the
/// non-collusion assumption is about their operators, not their contents.
#[derive(Clone, Debug)]
pub struct PirServer {
    params: DpfParams,
    record_len: usize,
    /// Bytes between consecutive record starts: `record_len` rounded up to
    /// a word multiple. The pad bytes are always zero, so scanning padded
    /// records XORs the same answer as scanning exact-length ones.
    stride: usize,
    /// Scan kernel resolved at construction (env override or CPU detect).
    backend: KernelBackend,
    /// Occupied slots, ascending.
    slots: Vec<u64>,
    /// Record bytes, 64-byte-aligned, `slots.len() * stride`.
    data: AlignedBuf,
}

impl PirServer {
    /// Create an empty server for the given domain and record size.
    pub fn new(params: DpfParams, record_len: usize) -> Self {
        assert!(record_len > 0, "record_len must be positive");
        Self {
            params,
            record_len,
            stride: record_len.next_multiple_of(8),
            backend: KernelBackend::detect(),
            slots: Vec::new(),
            data: AlignedBuf::new(),
        }
    }

    /// Build a server from `(slot, record)` entries.
    ///
    /// Entries may arrive in any order; duplicate slots and wrong-length
    /// records are rejected.
    pub fn from_entries(
        params: DpfParams,
        record_len: usize,
        mut entries: Vec<(u64, Vec<u8>)>,
    ) -> Result<Self, PirError> {
        entries.sort_by_key(|e| e.0);
        let mut server = Self::new(params, record_len);
        let mut last: Option<u64> = None;
        for (slot, rec) in entries {
            if last == Some(slot) {
                return Err(PirError::DuplicateSlot(slot));
            }
            last = Some(slot);
            server.insert_sorted(slot, &rec)?;
        }
        Ok(server)
    }

    fn insert_sorted(&mut self, slot: u64, record: &[u8]) -> Result<(), PirError> {
        if slot >= self.params.domain_size() {
            return Err(PirError::SlotOutOfRange {
                slot,
                domain: self.params.domain_size(),
            });
        }
        if record.len() != self.record_len {
            return Err(PirError::RecordLen {
                expected: self.record_len,
                got: record.len(),
            });
        }
        self.slots.push(slot);
        let at = self.data.len();
        self.data.insert_zeroed(at, self.stride);
        self.data.as_mut_slice()[at..at + self.record_len].copy_from_slice(record);
        Ok(())
    }

    /// Insert or replace the record at `slot`.
    pub fn upsert(&mut self, slot: u64, record: &[u8]) -> Result<(), PirError> {
        if slot >= self.params.domain_size() {
            return Err(PirError::SlotOutOfRange {
                slot,
                domain: self.params.domain_size(),
            });
        }
        if record.len() != self.record_len {
            return Err(PirError::RecordLen {
                expected: self.record_len,
                got: record.len(),
            });
        }
        match self.slots.binary_search(&slot) {
            Ok(i) => {
                let at = i * self.stride;
                self.data.as_mut_slice()[at..at + self.record_len].copy_from_slice(record);
            }
            Err(i) => {
                self.slots.insert(i, slot);
                let at = i * self.stride;
                // Open a zeroed stride-wide gap (the pad bytes must be
                // zero) and write the record bytes at its start.
                self.data.insert_zeroed(at, self.stride);
                self.data.as_mut_slice()[at..at + self.record_len].copy_from_slice(record);
            }
        }
        Ok(())
    }

    /// Remove the record at `slot`, if present. Returns whether it existed.
    pub fn remove(&mut self, slot: u64) -> bool {
        match self.slots.binary_search(&slot) {
            Ok(i) => {
                self.slots.remove(i);
                self.data.remove(i * self.stride, self.stride);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether `slot` is occupied.
    pub fn contains(&self, slot: u64) -> bool {
        self.slots.binary_search(&slot).is_ok()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total stored bytes (the quantity the paper's per-GiB scan cost is
    /// normalized against). Excludes stride padding; see
    /// [`PirServer::padded_bytes`] for the bytes a sweep actually reads.
    pub fn stored_bytes(&self) -> usize {
        self.slots.len() * self.record_len
    }

    /// Bytes one full scan sweep reads: records at their padded stride.
    /// This is what the `pir.scan.bytes` counter advances by per sweep.
    pub fn padded_bytes(&self) -> usize {
        self.slots.len() * self.stride
    }

    /// Bytes between consecutive record starts (`record_len` rounded up to
    /// a word multiple; the pad bytes are always zero).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The scan kernel this server resolved at construction.
    pub fn scan_backend(&self) -> KernelBackend {
        self.backend
    }

    /// The DPF parameters queries must use.
    pub fn params(&self) -> DpfParams {
        self.params
    }

    /// Iterate over the stored `(slot, record)` pairs in slot order.
    /// Used when re-materializing the store into another layout (e.g.
    /// splitting it across deployment shards).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> + '_ {
        let bytes = self.data.as_slice();
        self.slots.iter().enumerate().map(move |(i, &slot)| {
            (
                slot,
                &bytes[i * self.stride..i * self.stride + self.record_len],
            )
        })
    }

    /// The fixed record (bucket) size in bytes.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// The one place query parameters are validated against the database,
    /// shared by [`PirServer::answer`] and [`PirServer::answer_batch`].
    fn check_query_params(&self, keys: &[DpfKey]) -> Result<(), PirError> {
        if keys.iter().any(|k| k.params() != self.params) {
            return Err(PirError::ParamsMismatch);
        }
        Ok(())
    }

    /// Answer one query: full-domain DPF evaluation plus the data scan.
    /// Delegates to [`PirServer::answer_batch`] with a batch of one so
    /// batching semantics live in exactly one place.
    pub fn answer(&self, key: &DpfKey) -> Result<Vec<u8>, PirError> {
        let mut answers = self.answer_batch(std::slice::from_ref(key))?;
        Ok(answers.pop().expect("batch of one"))
    }

    /// The scan half of [`PirServer::answer`], exposed so the sharded
    /// deployment (which receives pre-expanded sub-tree evaluations from a
    /// front-end, §5.2) can reuse it.
    ///
    /// `bits` is the packed full-domain share bit vector; a vector of the
    /// wrong length means the query was generated for other parameters and
    /// is rejected (in release builds it would otherwise index out of
    /// bounds mid-scan).
    pub fn scan(&self, bits: &[u8]) -> Result<Vec<u8>, PirError> {
        if bits.len() != self.params.output_len() {
            return Err(PirError::ParamsMismatch);
        }
        let _scan = lightweb_telemetry::span!("pir.scan.ns");
        let mut answers = self.scan_rows_range(self.backend, 0..self.slots.len(), &[bits]);
        Ok(answers.pop().expect("batch of one"))
    }

    /// Scan only the records at indices `records` (not slots — positions in
    /// the occupied-slot list). The building block a worker pool partitions
    /// the scan over; partial accumulators XOR together into the full
    /// answer. Callers must pre-validate `bits` (see [`PirServer::scan`]).
    pub fn scan_range(&self, records: Range<usize>, bits: &[u8]) -> Vec<u8> {
        debug_assert_eq!(bits.len(), self.params.output_len());
        self.scan_rows_range(self.backend, records, &[bits])
            .pop()
            .expect("batch of one")
    }

    /// One scan pass answering many pre-evaluated bit vectors at once: the
    /// batched analogue of [`PirServer::scan`].
    pub fn scan_batch(&self, bit_vecs: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, PirError> {
        if bit_vecs
            .iter()
            .any(|bits| bits.len() != self.params.output_len())
        {
            return Err(PirError::ParamsMismatch);
        }
        let _scan = lightweb_telemetry::span!("pir.scan.ns");
        let rows: Vec<&[u8]> = bit_vecs.iter().map(|b| b.as_slice()).collect();
        Ok(self.scan_rows_range(self.backend, 0..self.slots.len(), &rows))
    }

    /// Batched scan over the record-index range `records` only; the
    /// range-partitioned building block of [`PirServer::scan_batch`].
    /// Callers must pre-validate the bit vectors.
    pub fn scan_batch_range(&self, records: Range<usize>, bit_vecs: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let rows: Vec<&[u8]> = bit_vecs.iter().map(|b| b.as_slice()).collect();
        self.scan_rows_range(self.backend, records, &rows)
    }

    /// [`PirServer::scan_batch_range`] forced onto a specific kernel
    /// backend, bypassing detection — the hook the differential test
    /// suite uses to hold every backend to the scalar reference.
    pub fn scan_batch_range_with(
        &self,
        backend: KernelBackend,
        records: Range<usize>,
        bit_vecs: &[Vec<u8>],
    ) -> Vec<Vec<u8>> {
        let rows: Vec<&[u8]> = bit_vecs.iter().map(|b| b.as_slice()).collect();
        self.scan_rows_range(backend, records, &rows)
    }

    /// One scan pass answering a whole evaluated [`BitMatrix`] — the
    /// preferred batched entry point: the matrix is one allocation for the
    /// entire batch and its rows are word-aligned for the kernel.
    pub fn scan_matrix(&self, matrix: &BitMatrix) -> Result<Vec<Vec<u8>>, PirError> {
        if matrix.row_bytes() != self.params.output_len() {
            return Err(PirError::ParamsMismatch);
        }
        let _scan = lightweb_telemetry::span!("pir.scan.ns");
        Ok(self.scan_matrix_range(0..self.slots.len(), matrix))
    }

    /// Matrix scan over the record-index range `records` only; the
    /// range-partitioned building block of [`PirServer::scan_matrix`].
    /// Callers must pre-validate the matrix (see [`PirServer::scan_matrix`]).
    pub fn scan_matrix_range(&self, records: Range<usize>, matrix: &BitMatrix) -> Vec<Vec<u8>> {
        debug_assert_eq!(matrix.row_bytes(), self.params.output_len());
        let rows = matrix.row_slices();
        self.scan_rows_range(self.backend, records, &rows)
    }

    /// The one core scan every public path funnels into: run the kernel
    /// over the padded buffer, account the swept bytes, and slice the
    /// word-wide accumulators back down to `record_len`.
    fn scan_rows_range(
        &self,
        backend: KernelBackend,
        records: Range<usize>,
        rows: &[&[u8]],
    ) -> Vec<Vec<u8>> {
        debug_assert!(records.end <= self.slots.len());
        if rows.is_empty() {
            return Vec::new();
        }
        let stride_words = self.stride / 8;
        let mut acc = vec![0u64; rows.len() * stride_words];
        kernel::scan_batch_kernel(
            backend,
            self.data.as_words(),
            stride_words,
            &self.slots,
            records.clone(),
            rows,
            &mut acc,
        );
        // One sweep serves the whole batch: the memory traffic is the
        // range's padded bytes, independent of the batch size.
        lightweb_telemetry::counter!("pir.scan.bytes").add((records.len() * self.stride) as u64);
        acc.chunks(stride_words)
            .map(|words| kernel::words_as_bytes(words)[..self.record_len].to_vec())
            .collect()
    }

    /// Answer a batch of queries in one pass over the data (§5.1 batching).
    ///
    /// All DPF keys are evaluated first, into one contiguous
    /// [`BitMatrix`]; the scan then visits each record once, accumulating
    /// into every query's bucket. With `b` queries the per-query scan cost
    /// drops by ~`b`× while the DPF-evaluation cost is unchanged — the
    /// origin of the paper's latency/throughput trade-off.
    pub fn answer_batch(&self, keys: &[DpfKey]) -> Result<Vec<Vec<u8>>, PirError> {
        self.check_query_params(keys)?;
        let mut matrix = BitMatrix::new(keys.len(), self.params.output_len());
        {
            let _eval = lightweb_telemetry::span!("pir.eval.ns");
            for (i, key) in keys.iter().enumerate() {
                key.eval_full_into(matrix.row_mut(i));
            }
        }
        self.scan_matrix(&matrix)
    }
}

/// A pair of DPF keys forming one two-server PIR query.
#[derive(Clone, Debug)]
pub struct TwoServerQuery {
    /// Key for server 0.
    pub key0: DpfKey,
    /// Key for server 1.
    pub key1: DpfKey,
    /// The queried slot (client-side only; never sent).
    pub slot: u64,
}

/// Client side of the two-server protocol.
#[derive(Clone, Copy, Debug)]
pub struct TwoServerClient {
    params: DpfParams,
    record_len: usize,
}

impl TwoServerClient {
    /// Create a client for databases with the given parameters.
    pub fn new(params: DpfParams, record_len: usize) -> Self {
        Self { params, record_len }
    }

    /// The negotiated record (bucket) length.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// The negotiated DPF parameters.
    pub fn params(&self) -> DpfParams {
        self.params
    }

    /// Build the query for `slot`: a fresh DPF key pair for the point
    /// function at `slot`.
    pub fn query_slot(&self, slot: u64) -> TwoServerQuery {
        assert!(slot < self.params.domain_size(), "slot outside domain");
        let (key0, key1) = gen(&self.params, slot);
        TwoServerQuery { key0, key1, slot }
    }

    /// Combine the two servers' answers into the plaintext bucket.
    pub fn combine(answer0: &[u8], answer1: &[u8]) -> Result<Vec<u8>, PirError> {
        if answer0.len() != answer1.len() {
            return Err(PirError::AnswerLen);
        }
        Ok(answer0
            .iter()
            .zip(answer1.iter())
            .map(|(a, b)| a ^ b)
            .collect())
    }

    /// Upload bytes for one query (both servers' keys).
    pub fn upload_bytes(&self) -> usize {
        let q = self.query_slot(0);
        q.key0.serialized_len() + q.key1.serialized_len()
    }

    /// Download bytes for one query (both servers' buckets).
    pub fn download_bytes(&self) -> usize {
        2 * self.record_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DpfParams {
        DpfParams::new(10, 3).unwrap()
    }

    fn sample_entries(n: usize, record_len: usize) -> Vec<(u64, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let slot = (i as u64 * 37 + 5) % (1 << 10);
                let mut rec = vec![0u8; record_len];
                rec[0] = i as u8;
                rec[record_len - 1] = (i * 3) as u8;
                (slot, rec)
            })
            .collect()
    }

    #[test]
    fn end_to_end_retrieval() {
        let p = params();
        let entries = sample_entries(25, 32);
        let s0 = PirServer::from_entries(p, 32, entries.clone()).unwrap();
        let s1 = s0.clone();
        let client = TwoServerClient::new(p, 32);
        for (slot, rec) in &entries {
            let q = client.query_slot(*slot);
            let a0 = s0.answer(&q.key0).unwrap();
            let a1 = s1.answer(&q.key1).unwrap();
            assert_eq!(TwoServerClient::combine(&a0, &a1).unwrap(), *rec);
        }
    }

    #[test]
    fn querying_an_empty_slot_returns_zeros() {
        let p = params();
        let entries = sample_entries(5, 16);
        let occupied: Vec<u64> = entries.iter().map(|e| e.0).collect();
        let s0 = PirServer::from_entries(p, 16, entries.clone()).unwrap();
        let s1 = s0.clone();
        let client = TwoServerClient::new(p, 16);
        let empty_slot = (0..p.domain_size())
            .find(|s| !occupied.contains(s))
            .unwrap();
        let q = client.query_slot(empty_slot);
        let a0 = s0.answer(&q.key0).unwrap();
        let a1 = s1.answer(&q.key1).unwrap();
        assert_eq!(TwoServerClient::combine(&a0, &a1).unwrap(), vec![0u8; 16]);
    }

    #[test]
    fn single_answer_is_pseudorandom_not_the_record() {
        let p = params();
        let entries = sample_entries(10, 16);
        let s0 = PirServer::from_entries(p, 16, entries.clone()).unwrap();
        let client = TwoServerClient::new(p, 16);
        let q = client.query_slot(entries[0].0);
        let a0 = s0.answer(&q.key0).unwrap();
        // A single server's answer XORs a pseudorandom subset of records —
        // overwhelmingly unlikely to equal the target record exactly.
        assert_ne!(a0, entries[0].1);
    }

    #[test]
    fn duplicate_slot_rejected() {
        let p = params();
        let entries = vec![(3u64, vec![0u8; 8]), (3u64, vec![1u8; 8])];
        assert_eq!(
            PirServer::from_entries(p, 8, entries).unwrap_err(),
            PirError::DuplicateSlot(3)
        );
    }

    #[test]
    fn wrong_record_len_rejected() {
        let p = params();
        let entries = vec![(3u64, vec![0u8; 7])];
        assert!(matches!(
            PirServer::from_entries(p, 8, entries).unwrap_err(),
            PirError::RecordLen {
                expected: 8,
                got: 7
            }
        ));
    }

    #[test]
    fn slot_out_of_range_rejected() {
        let p = params();
        let entries = vec![(1 << 10, vec![0u8; 8])];
        assert!(matches!(
            PirServer::from_entries(p, 8, entries).unwrap_err(),
            PirError::SlotOutOfRange { .. }
        ));
    }

    #[test]
    fn params_mismatch_rejected() {
        let p = params();
        let server = PirServer::from_entries(p, 8, sample_entries(3, 8)).unwrap();
        let other = DpfParams::new(8, 2).unwrap();
        let client = TwoServerClient::new(other, 8);
        let q = client.query_slot(0);
        assert_eq!(
            server.answer(&q.key0).unwrap_err(),
            PirError::ParamsMismatch
        );
        assert_eq!(
            server.answer_batch(&[q.key0]).unwrap_err(),
            PirError::ParamsMismatch
        );
    }

    #[test]
    fn upsert_replaces_and_inserts() {
        let p = params();
        let mut server = PirServer::new(p, 4);
        server.upsert(10, &[1, 2, 3, 4]).unwrap();
        server.upsert(5, &[5, 6, 7, 8]).unwrap();
        server.upsert(10, &[9, 9, 9, 9]).unwrap();
        assert_eq!(server.len(), 2);
        assert!(server.contains(5) && server.contains(10));

        // Retrieval reflects the replacement.
        let s1 = server.clone();
        let client = TwoServerClient::new(p, 4);
        let q = client.query_slot(10);
        let got = TwoServerClient::combine(
            &server.answer(&q.key0).unwrap(),
            &s1.answer(&q.key1).unwrap(),
        )
        .unwrap();
        assert_eq!(got, vec![9, 9, 9, 9]);
    }

    #[test]
    fn remove_deletes_record() {
        let p = params();
        let mut server =
            PirServer::from_entries(p, 4, vec![(1, vec![1; 4]), (2, vec![2; 4])]).unwrap();
        assert!(server.remove(1));
        assert!(!server.remove(1));
        assert_eq!(server.len(), 1);
        assert_eq!(server.stored_bytes(), 4);
        assert!(!server.contains(1));
    }

    #[test]
    fn combine_length_mismatch_rejected() {
        assert_eq!(
            TwoServerClient::combine(&[0; 4], &[0; 5]).unwrap_err(),
            PirError::AnswerLen
        );
    }

    #[test]
    fn upload_download_accounting() {
        // At d = 22 the paper reports ~13.6 KiB total per request: two DPF
        // keys up plus two 4 KiB buckets down. Check our accounting has the
        // same structure (upload ~ hundreds of bytes, download = 2 buckets).
        let p = DpfParams::new(22, 7).unwrap();
        let client = TwoServerClient::new(p, 4096);
        assert_eq!(client.download_bytes(), 8192);
        let up = client.upload_bytes();
        assert!(up > 300 && up < 1200, "upload {up} bytes");
    }

    #[test]
    fn short_bit_vector_rejected_not_panicking() {
        // Regression: a short `bits` slice used to be only debug_assert!ed
        // and indexed out of bounds mid-scan in release builds.
        let p = params();
        let server = PirServer::from_entries(p, 16, sample_entries(10, 16)).unwrap();
        let short = vec![0u8; p.output_len() - 1];
        assert_eq!(server.scan(&short).unwrap_err(), PirError::ParamsMismatch);
        let long = vec![0u8; p.output_len() + 1];
        assert_eq!(server.scan(&long).unwrap_err(), PirError::ParamsMismatch);
        let mixed = vec![vec![0u8; p.output_len()], vec![0u8; 1]];
        assert_eq!(
            server.scan_batch(&mixed).unwrap_err(),
            PirError::ParamsMismatch
        );
    }

    #[test]
    fn range_partials_xor_to_full_scan() {
        let p = params();
        let server = PirServer::from_entries(p, 16, sample_entries(25, 16)).unwrap();
        let client = TwoServerClient::new(p, 16);
        let q = client.query_slot(42);
        let bits = q.key0.eval_full();
        let full = server.scan(&bits).unwrap();
        for split in [0, 1, 7, 12, 25] {
            let mut acc = server.scan_range(0..split, &bits);
            let hi = server.scan_range(split..server.len(), &bits);
            for (a, b) in acc.iter_mut().zip(hi.iter()) {
                *a ^= *b;
            }
            assert_eq!(acc, full, "split at {split}");
        }
        let batched = server.scan_batch(std::slice::from_ref(&bits)).unwrap();
        assert_eq!(batched[0], full);
    }

    #[test]
    fn stride_is_word_padded_and_buffer_is_aligned() {
        let p = params();
        // 13-byte records force real padding: stride must round to 16.
        let server = PirServer::from_entries(p, 13, sample_entries(9, 13)).unwrap();
        assert_eq!(server.stride(), 16);
        assert_eq!(server.stored_bytes(), 9 * 13);
        assert_eq!(server.padded_bytes(), 9 * 16);
        // The data buffer base is cache-line aligned, so with the stride a
        // word multiple every record start is word-aligned.
        let base = server.iter().next().unwrap().1.as_ptr() as usize;
        assert_eq!(base % 64, 0, "buffer base must be 64-byte aligned");
        // Word-multiple record lengths need no padding at all.
        let exact = PirServer::from_entries(p, 16, sample_entries(4, 16)).unwrap();
        assert_eq!(exact.stride(), 16);
        assert_eq!(exact.stored_bytes(), exact.padded_bytes());
    }

    #[test]
    fn padded_layout_answers_match_unpadded_semantics() {
        // The reference answer computed straight from the entries (an
        // unpadded, byte-exact model) must equal the padded server's scan
        // for every record length around the word boundary.
        let p = params();
        for record_len in [1usize, 7, 8, 9, 13, 16, 31] {
            let entries = sample_entries(17, record_len);
            let server = PirServer::from_entries(p, record_len, entries.clone()).unwrap();
            let q = TwoServerClient::new(p, record_len).query_slot(entries[3].0);
            let bits = q.key0.eval_full();
            let mut expected = vec![0u8; record_len];
            for (slot, rec) in &entries {
                if (bits[(slot / 8) as usize] >> (slot % 8)) & 1 == 1 {
                    for (e, r) in expected.iter_mut().zip(rec.iter()) {
                        *e ^= *r;
                    }
                }
            }
            assert_eq!(
                server.scan(&bits).unwrap(),
                expected,
                "record_len {record_len}"
            );
        }
    }

    #[test]
    fn upsert_and_remove_preserve_padding_invariants() {
        // Mid-buffer inserts and removals must keep every record at its
        // stride slot with zero padding (a stale pad byte would corrupt
        // every later answer).
        let p = params();
        let mut server = PirServer::new(p, 5);
        for slot in [40u64, 10, 30, 20, 50] {
            server.upsert(slot, &[slot as u8; 5]).unwrap();
        }
        server.remove(30);
        server.upsert(15, &[7u8; 5]).unwrap();
        server.upsert(40, &[9u8; 5]).unwrap();
        let s1 = server.clone();
        let client = TwoServerClient::new(p, 5);
        for (slot, expected) in [
            (10u64, [10u8; 5]),
            (15, [7; 5]),
            (20, [20; 5]),
            (40, [9; 5]),
        ] {
            let q = client.query_slot(slot);
            let got = TwoServerClient::combine(
                &server.answer(&q.key0).unwrap(),
                &s1.answer(&q.key1).unwrap(),
            )
            .unwrap();
            assert_eq!(got, expected, "slot {slot}");
        }
    }

    #[test]
    fn every_kernel_backend_answers_identically() {
        let p = params();
        let entries = sample_entries(23, 19);
        let server = PirServer::from_entries(p, 19, entries).unwrap();
        let bit_vecs: Vec<Vec<u8>> = [3u64, 99, 500]
            .iter()
            .map(|&s| TwoServerClient::new(p, 19).query_slot(s).key0.eval_full())
            .collect();
        let reference =
            server.scan_batch_range_with(KernelBackend::Scalar, 0..server.len(), &bit_vecs);
        for backend in KernelBackend::ALL {
            assert_eq!(
                server.scan_batch_range_with(backend, 0..server.len(), &bit_vecs),
                reference,
                "backend {}",
                backend.name()
            );
        }
        assert!(server.scan_backend().is_supported());
    }

    #[test]
    fn matrix_scan_matches_vec_scan() {
        let p = params();
        let server = PirServer::from_entries(p, 24, sample_entries(15, 24)).unwrap();
        let client = TwoServerClient::new(p, 24);
        let bit_vecs: Vec<Vec<u8>> = (0..4u64)
            .map(|i| client.query_slot(i * 11).key0.eval_full())
            .collect();
        let matrix = lightweb_dpf::BitMatrix::from_rows(p.output_len(), &bit_vecs).unwrap();
        assert_eq!(
            server.scan_matrix(&matrix).unwrap(),
            server.scan_batch(&bit_vecs).unwrap()
        );
        // A matrix built for other parameters is rejected.
        let wrong = lightweb_dpf::BitMatrix::new(1, p.output_len() - 1);
        assert_eq!(
            server.scan_matrix(&wrong).unwrap_err(),
            PirError::ParamsMismatch
        );
    }

    #[test]
    fn batch_of_one_matches_single() {
        let p = params();
        let server = PirServer::from_entries(p, 16, sample_entries(10, 16)).unwrap();
        let client = TwoServerClient::new(p, 16);
        let q = client.query_slot(5 % p.domain_size());
        let batched = server.answer_batch(std::slice::from_ref(&q.key0)).unwrap();
        assert_eq!(batched[0], server.answer(&q.key0).unwrap());
    }
}
