//! A 64-byte-aligned growable byte buffer for the record store.
//!
//! The scan kernels (see [`crate::kernel`]) read the database as whole
//! `u64` words and, on AVX2, as 256-bit lanes. Backing the record bytes
//! with an ordinary `Vec<u8>` gives no alignment guarantee at all; this
//! buffer allocates in 64-byte cache lines so the base address is always
//! cache-line aligned, and [`crate::two_server::PirServer`] pads every
//! record stride to a word multiple — together, every record starts on an
//! 8-byte boundary and no scan word ever straddles a record.

/// One cache line of storage; the allocation unit that pins alignment.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct CacheLine([u8; 64]);

const LINE: usize = 64;

/// A byte buffer whose base address is 64-byte aligned, supporting the
/// mid-buffer insert/remove the record store needs for upserts.
#[derive(Clone, Default)]
pub(crate) struct AlignedBuf {
    lines: Vec<CacheLine>,
    len: usize,
}

impl Default for CacheLine {
    fn default() -> Self {
        CacheLine([0u8; LINE])
    }
}

impl AlignedBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes in use.
    pub fn len(&self) -> usize {
        self.len
    }

    fn raw(&self) -> &[u8] {
        // SAFETY: `CacheLine` is `repr(C)` over `[u8; 64]` with no
        // padding; the allocation holds `lines.len() * 64` initialized
        // bytes.
        unsafe {
            std::slice::from_raw_parts(self.lines.as_ptr() as *const u8, self.lines.len() * LINE)
        }
    }

    fn raw_mut(&mut self) -> &mut [u8] {
        // SAFETY: as above.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.lines.as_mut_ptr() as *mut u8,
                self.lines.len() * LINE,
            )
        }
    }

    /// The in-use bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.raw()[..self.len]
    }

    /// The in-use bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        let len = self.len;
        &mut self.raw_mut()[..len]
    }

    /// The in-use bytes as words. Requires `len()` to be a multiple of 8
    /// (always true for a stride-padded record store).
    pub fn as_words(&self) -> &[u64] {
        debug_assert_eq!(self.len % 8, 0, "word view of a non-word-sized buffer");
        // SAFETY: the base address is 64-byte (hence 8-byte) aligned, the
        // first `len` bytes are initialized, and any bit pattern is a
        // valid `u64`.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr() as *const u64, self.len / 8) }
    }

    fn ensure_capacity(&mut self, bytes: usize) {
        let need = bytes.div_ceil(LINE);
        if need > self.lines.len() {
            // Grow geometrically so repeated single-record inserts stay
            // amortized O(1), like Vec.
            let target = need.max(self.lines.len() * 2);
            self.lines.resize(target, CacheLine::default());
        }
    }

    /// Open a zeroed gap of `n` bytes at offset `at`, shifting the tail
    /// right. `at` must be `<= len()`.
    pub fn insert_zeroed(&mut self, at: usize, n: usize) {
        assert!(at <= self.len, "insert offset outside buffer");
        self.ensure_capacity(self.len + n);
        let len = self.len;
        let raw = self.raw_mut();
        raw.copy_within(at..len, at + n);
        raw[at..at + n].fill(0);
        self.len += n;
    }

    /// Remove `n` bytes at offset `at`, shifting the tail left.
    pub fn remove(&mut self, at: usize, n: usize) {
        assert!(at + n <= self.len, "remove range outside buffer");
        let len = self.len;
        let raw = self.raw_mut();
        raw.copy_within(at + n..len, at);
        // Keep the freed tail zeroed so future gap-opens expose only
        // zero bytes and word views of fresh records see no stale data.
        raw[len - n..len].fill(0);
        self.len -= n;
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .field("capacity", &(self.lines.len() * LINE))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_cache_line_aligned_across_growth() {
        let mut buf = AlignedBuf::new();
        for round in 0..8 {
            buf.insert_zeroed(buf.len(), 100);
            assert_eq!(
                buf.as_slice().as_ptr() as usize % 64,
                0,
                "round {round}: base must stay 64-byte aligned"
            );
        }
        assert_eq!(buf.len(), 800);
    }

    #[test]
    fn insert_and_remove_behave_like_vec_splice() {
        let mut buf = AlignedBuf::new();
        let mut model: Vec<u8> = Vec::new();
        let ops = [(0usize, 16usize), (8, 8), (0, 24), (16, 8)];
        for (at, n) in ops {
            buf.insert_zeroed(at, n);
            model.splice(at..at, std::iter::repeat_n(0u8, n));
            for (i, b) in buf.as_mut_slice().iter_mut().enumerate() {
                if *b == 0 {
                    *b = (i % 251) as u8 + 1;
                }
            }
            for (i, b) in model.iter_mut().enumerate() {
                if *b == 0 {
                    *b = (i % 251) as u8 + 1;
                }
            }
            assert_eq!(buf.as_slice(), model.as_slice());
        }
        buf.remove(8, 16);
        model.drain(8..24);
        assert_eq!(buf.as_slice(), model.as_slice());
    }

    #[test]
    fn word_view_matches_bytes() {
        let mut buf = AlignedBuf::new();
        buf.insert_zeroed(0, 16);
        buf.as_mut_slice()
            .copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]);
        let words = buf.as_words();
        assert_eq!(words.len(), 2);
        assert_eq!(words[0].to_ne_bytes(), [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(words[1].to_ne_bytes(), [9, 10, 11, 12, 13, 14, 15, 16]);
    }

    #[test]
    fn removed_tail_is_rezeroed() {
        let mut buf = AlignedBuf::new();
        buf.insert_zeroed(0, 24);
        buf.as_mut_slice().fill(0xAA);
        buf.remove(0, 8);
        assert_eq!(buf.len(), 16);
        // Open a gap where the stale tail used to be: it must read zero.
        buf.insert_zeroed(16, 8);
        assert_eq!(&buf.as_slice()[16..], &[0u8; 8]);
    }
}
