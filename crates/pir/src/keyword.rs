//! PIR by keywords: hashing arbitrary path strings onto the DPF domain.
//!
//! ZLTP keys are arbitrary strings (lightweb paths). The prototype maps a
//! key onto the DPF output domain of size `2^d` with a shared keyed hash;
//! the client then performs index PIR on the hashed slot. §5.1 sizes the
//! domain at `2^22` for roughly `2^20` stored pairs, so a *new* key collides
//! with an existing one with probability at most 1/4 even at capacity — and
//! "if this happens, then the publisher can simply select another key
//! name". The [`crate::cuckoo`] module implements the other mitigation the
//! paper mentions.

use lightweb_crypto::SipHash24;

/// The shared keyword→slot map: a keyed hash truncated to the DPF domain.
///
/// All parties in a universe (clients, both PIR servers, publishers) must
/// use the same map, so its 128-bit key is public universe metadata — it
/// provides balance, not secrecy.
#[derive(Clone, Copy, Debug)]
pub struct KeywordMap {
    sip: SipHash24,
    domain_bits: u32,
}

impl KeywordMap {
    /// Create a map onto a domain of size `2^domain_bits`.
    pub fn new(hash_key: &[u8; 16], domain_bits: u32) -> Self {
        assert!((1..=40).contains(&domain_bits), "domain_bits out of range");
        Self {
            sip: SipHash24::new(hash_key),
            domain_bits,
        }
    }

    /// The slot a keyword maps to.
    pub fn slot(&self, keyword: &[u8]) -> u64 {
        self.sip.hash_to_domain(keyword, self.domain_bits)
    }

    /// log2 of the slot domain.
    pub fn domain_bits(&self) -> u32 {
        self.domain_bits
    }

    /// Map a set of keywords, reporting any that collide.
    ///
    /// Returns `(assignments, collisions)` where `collisions` lists the
    /// indices of keywords whose slot was already taken by an earlier
    /// keyword. The publisher-facing layer uses this to ask for a rename.
    pub fn assign_all<'a>(
        &self,
        keywords: impl IntoIterator<Item = &'a [u8]>,
    ) -> (Vec<u64>, Vec<usize>) {
        let mut seen = std::collections::HashSet::new();
        let mut slots = Vec::new();
        let mut collisions = Vec::new();
        for (i, kw) in keywords.into_iter().enumerate() {
            let s = self.slot(kw);
            if !seen.insert(s) {
                collisions.push(i);
            }
            slots.push(s);
        }
        (slots, collisions)
    }
}

/// Probability that a *fresh* keyword collides with at least one of
/// `n_keys` already-stored keys in a domain of size `2^domain_bits`:
/// `1 - (1 - 2^-d)^n`.
///
/// At the paper's operating point (`n = 2^20`, `d = 22`) this is
/// `1 - (1 - 2^-22)^(2^20) ≈ 0.221 ≤ 1/4` — the bound quoted in §5.1.
pub fn analytic_collision_probability(n_keys: u64, domain_bits: u32) -> f64 {
    let d = 2f64.powi(domain_bits as i32);
    // ln(1-p) * n, computed stably via ln_1p.
    1.0 - ((-1.0 / d).ln_1p() * n_keys as f64).exp()
}

/// Expected number of pairwise collisions when `n_keys` keys are hashed
/// into `2^domain_bits` slots: `C(n,2) / 2^d`. Useful for sizing domains.
pub fn expected_pairwise_collisions(n_keys: u64, domain_bits: u32) -> f64 {
    let n = n_keys as f64;
    n * (n - 1.0) / 2.0 / 2f64.powi(domain_bits as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_deterministic_and_in_range() {
        let map = KeywordMap::new(&[1u8; 16], 22);
        let a = map.slot(b"nytimes.com/world/africa/headlines.json");
        let b = map.slot(b"nytimes.com/world/africa/headlines.json");
        assert_eq!(a, b);
        assert!(a < 1 << 22);
    }

    #[test]
    fn different_hash_keys_give_different_maps() {
        let m1 = KeywordMap::new(&[1u8; 16], 22);
        let m2 = KeywordMap::new(&[2u8; 16], 22);
        // A re-keyed universe epoch re-shuffles slots (the paper's rename
        // escape hatch generalized).
        let moved = (0..64)
            .filter(|i| {
                let k = format!("page-{i}");
                m1.slot(k.as_bytes()) != m2.slot(k.as_bytes())
            })
            .count();
        assert!(moved > 48, "only {moved}/64 slots moved on re-key");
    }

    #[test]
    fn assign_all_reports_collisions() {
        // Force collisions with a tiny 2-bit domain.
        let map = KeywordMap::new(&[3u8; 16], 2);
        let keywords: Vec<Vec<u8>> = (0..16).map(|i| format!("k{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keywords.iter().map(|k| k.as_slice()).collect();
        let (slots, collisions) = map.assign_all(refs);
        assert_eq!(slots.len(), 16);
        // 16 keys into 4 slots must collide at least 12 times.
        assert!(collisions.len() >= 12);
        // And no collision index refers to the first occurrence of a slot.
        for &i in &collisions {
            assert!(slots[..i].contains(&slots[i]));
        }
    }

    #[test]
    fn paper_operating_point_is_below_one_quarter() {
        let p = analytic_collision_probability(1 << 20, 22);
        assert!(
            p <= 0.25,
            "P(collision) = {p} exceeds the paper's 1/4 bound"
        );
        assert!(
            p > 0.2,
            "P(collision) = {p} suspiciously small for n/D = 1/4"
        );
    }

    #[test]
    fn collision_probability_monotonic_in_n_and_d() {
        assert!(
            analytic_collision_probability(1 << 10, 22)
                < analytic_collision_probability(1 << 20, 22)
        );
        assert!(
            analytic_collision_probability(1 << 20, 24)
                < analytic_collision_probability(1 << 20, 22)
        );
        assert_eq!(analytic_collision_probability(0, 22), 0.0);
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        // Hash 2^12 keys into 2^14 slots, then measure the fresh-key
        // collision rate over 2000 probes; should match the analytic value
        // (~0.221) within Monte-Carlo noise.
        let map = KeywordMap::new(&[9u8; 16], 14);
        let occupied: std::collections::HashSet<u64> = (0..(1 << 12))
            .map(|i: u32| map.slot(format!("stored-{i}").as_bytes()))
            .collect();
        let probes = 2000;
        let hits = (0..probes)
            .filter(|i| occupied.contains(&map.slot(format!("fresh-{i}").as_bytes())))
            .count();
        let measured = hits as f64 / probes as f64;
        let analytic = analytic_collision_probability(occupied.len() as u64, 14);
        assert!(
            (measured - analytic).abs() < 0.05,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn expected_pairwise_collisions_sane() {
        // Birthday: 2^11 keys in 2^22 slots -> ~0.5 expected pairs.
        let e = expected_pairwise_collisions(1 << 11, 22);
        assert!((e - 0.4999).abs() < 0.01, "{e}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_bit_domain_rejected() {
        KeywordMap::new(&[0u8; 16], 0);
    }
}
