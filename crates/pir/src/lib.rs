#![warn(missing_docs)]

//! # lightweb-pir
//!
//! Private-information-retrieval engines for ZLTP (paper §2.2, §5).
//!
//! Two engines are provided, matching the paper's two cryptographic modes:
//!
//! * [`two_server`] — the prototype's primary mode: two non-colluding
//!   servers, distributed point functions, and a per-request linear scan
//!   over the stored key-value pairs. Upload is logarithmic in the key
//!   space; download is one fixed-size bucket. Includes the request
//!   *batching* of §5.1, which amortizes the data scan across a batch to
//!   trade latency for throughput.
//! * [`lwe`] — a single-server mode built on learning-with-errors (Regev)
//!   encryption in the style of SimplePIR. The paper notes such schemes
//!   "rest only on cryptographic assumptions" but carry higher
//!   communication and computation cost — this module exists so the
//!   benchmark harness can demonstrate exactly that trade-off.
//!
//! On top of the index-PIR engines, [`keyword`] maps arbitrary path strings
//! onto the DPF output domain (PIR *by keywords*, following
//! Chor-Gilboa-Naor), with the collision analysis of §5.1, and [`cuckoo`]
//! implements the cuckoo-hashing mitigation the paper proposes for
//! collisions.

mod aligned;
pub mod cuckoo;
pub mod cuckoo_pir;
pub mod kernel;
pub mod keyword;
pub mod lwe;
pub mod two_server;

pub use kernel::{KernelBackend, SCAN_KERNEL_ENV};
pub use keyword::{analytic_collision_probability, KeywordMap};
pub use two_server::{PirError, PirServer, TwoServerClient, TwoServerQuery};

#[cfg(test)]
mod proptests {
    use super::*;
    use lightweb_dpf::DpfParams;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every stored record is retrievable through the full two-server
        /// protocol, and the servers' answers are individually meaningless.
        #[test]
        fn two_server_pir_retrieves_any_record(
            domain_bits in 6u32..10,
            n_records in 1usize..40,
            record_len in 1usize..64,
            pick in any::<prop::sample::Index>(),
        ) {
            let params = DpfParams::new(domain_bits, 2.min(domain_bits - 1)).unwrap();
            let mut entries = Vec::new();
            for i in 0..n_records {
                let slot = (i as u64 * 7919) % params.domain_size();
                let rec: Vec<u8> = (0..record_len).map(|b| (b + i) as u8).collect();
                entries.push((slot, rec));
            }
            entries.sort_by_key(|e| e.0);
            entries.dedup_by_key(|e| e.0);

            let server0 = PirServer::from_entries(params, record_len, entries.clone()).unwrap();
            let server1 = PirServer::from_entries(params, record_len, entries.clone()).unwrap();
            let client = TwoServerClient::new(params, record_len);

            let (slot, expected) = &entries[pick.index(entries.len())];
            let query = client.query_slot(*slot);
            let r0 = server0.answer(&query.key0).unwrap();
            let r1 = server1.answer(&query.key1).unwrap();
            let got = TwoServerClient::combine(&r0, &r1).unwrap();
            prop_assert_eq!(&got, expected);
        }

        /// Batched answering returns exactly the same responses as
        /// one-at-a-time answering.
        #[test]
        fn batched_answers_match_sequential(
            domain_bits in 6u32..9,
            batch in 1usize..8,
        ) {
            let params = DpfParams::new(domain_bits, 2).unwrap();
            let record_len = 16usize;
            let mut entries: Vec<(u64, Vec<u8>)> = (0..20u64)
                .map(|i| {
                    let slot = (i * 13) % params.domain_size();
                    (slot, vec![i as u8; record_len])
                })
                .collect();
            entries.sort_by_key(|e| e.0);
            entries.dedup_by_key(|e| e.0);

            let server = PirServer::from_entries(params, record_len, entries.clone()).unwrap();
            let client = TwoServerClient::new(params, record_len);
            let queries: Vec<_> = (0..batch)
                .map(|i| client.query_slot(entries[i % entries.len()].0))
                .collect();
            let keys: Vec<_> = queries.iter().map(|q| q.key0.clone()).collect();
            let batched = server.answer_batch(&keys).unwrap();
            for (i, key) in keys.iter().enumerate() {
                prop_assert_eq!(&batched[i], &server.answer(key).unwrap());
            }
        }

        /// LWE single-server PIR decrypts to the right record.
        #[test]
        fn lwe_pir_retrieves_any_record(
            n_records in 2usize..24,
            record_len in 1usize..24,
            pick in any::<prop::sample::Index>(),
        ) {
            let params = lwe::LweParams::insecure_test();
            let records: Vec<Vec<u8>> = (0..n_records)
                .map(|i| (0..record_len).map(|b| (b * 31 + i * 7) as u8).collect())
                .collect();
            let server = lwe::LweServer::new(params, record_len, records.clone()).unwrap();
            let idx = pick.index(n_records);
            let client = lwe::LweClient::new(params, server.public_seed(), server.cols(), record_len);
            let query = client.query(idx);
            let answer = server.answer(&query.payload).unwrap();
            let got = client.decode(&query, server.hint(), &answer).unwrap();
            prop_assert_eq!(&got, &records[idx]);
        }
    }
}
