//! End-to-end keyword PIR over cuckoo hashing: the paper's "probing
//! several locations per request" collision mitigation (§5.1), wired into
//! the two-server engine.
//!
//! The single-hash keyword map caps occupancy around 25% before fresh-key
//! collisions exceed 1/4. With a cuckoo assignment, every stored key owns
//! one of its **two** candidate slots, occupancy safely reaches ~45%, and
//! the *client* resolves ambiguity: it privately fetches both candidate
//! slots and keeps the record whose embedded fingerprint matches. Both
//! probes are ordinary private-GETs, so the CDN still learns nothing; the
//! price is 2× per-request server compute — exactly the trade the paper
//! sketches.
//!
//! Record layout: `fingerprint(8 bytes) || payload`, so a record's true
//! key is verifiable without revealing it to the server.

use crate::cuckoo::{build_assignment, key_fingerprint, CuckooError, CuckooHasher};
use crate::two_server::{PirError, PirServer, TwoServerClient};
use lightweb_dpf::DpfParams;

/// Bytes of each record consumed by the embedded fingerprint.
pub const FINGERPRINT_LEN: usize = 8;

/// Errors from the cuckoo PIR layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CuckooPirError {
    /// The cuckoo assignment could not be built.
    Build(CuckooError),
    /// The underlying PIR engine failed.
    Pir(PirError),
    /// A payload was too large for the fixed record size.
    PayloadLen {
        /// Largest payload the record size allows.
        max: usize,
        /// The offending payload's length.
        got: usize,
    },
}

impl std::fmt::Display for CuckooPirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CuckooPirError::Build(e) => write!(f, "cuckoo build: {e}"),
            CuckooPirError::Pir(e) => write!(f, "pir: {e}"),
            CuckooPirError::PayloadLen { max, got } => {
                write!(f, "payload of {got} bytes exceeds {max}")
            }
        }
    }
}

impl std::error::Error for CuckooPirError {}

/// Build the two (identical) cuckoo-PIR databases from keyword/value
/// pairs. `record_len` includes the fingerprint; payloads may be at most
/// `record_len - FINGERPRINT_LEN` bytes and are zero-padded.
pub fn build_cuckoo_server(
    hasher: &CuckooHasher,
    params: DpfParams,
    record_len: usize,
    pairs: &[(&[u8], &[u8])],
) -> Result<PirServer, CuckooPirError> {
    assert!(
        record_len > FINGERPRINT_LEN,
        "record too small for a fingerprint"
    );
    assert_eq!(
        hasher.domain_bits(),
        params.domain_bits(),
        "hasher and DPF domain must agree"
    );
    let keys: Vec<&[u8]> = pairs.iter().map(|(k, _)| *k).collect();
    let assignment = build_assignment(hasher, &keys).map_err(CuckooPirError::Build)?;

    let max_payload = record_len - FINGERPRINT_LEN;
    let mut entries = Vec::with_capacity(pairs.len());
    for ((key, value), slot) in pairs.iter().zip(assignment.slots.iter()) {
        if value.len() > max_payload {
            return Err(CuckooPirError::PayloadLen {
                max: max_payload,
                got: value.len(),
            });
        }
        let mut rec = vec![0u8; record_len];
        rec[..FINGERPRINT_LEN].copy_from_slice(&key_fingerprint(hasher, key));
        rec[FINGERPRINT_LEN..FINGERPRINT_LEN + value.len()].copy_from_slice(value);
        entries.push((*slot, rec));
    }
    PirServer::from_entries(params, record_len, entries).map_err(CuckooPirError::Pir)
}

/// Client side: fetch a keyword with two private probes and fingerprint
/// disambiguation. `fetch` runs one two-server slot query (the caller owns
/// the sessions); it is invoked exactly twice for every lookup — hit,
/// miss, or collision — so the access pattern stays fixed.
pub fn cuckoo_private_get<E>(
    hasher: &CuckooHasher,
    client: &TwoServerClient,
    keyword: &[u8],
    mut fetch: impl FnMut(u64) -> Result<Vec<u8>, E>,
) -> Result<Option<Vec<u8>>, E> {
    let fp = key_fingerprint(hasher, keyword);
    let cands = hasher.candidates(keyword);
    let record_len = client.record_len();
    let mut found = None;
    for slot in cands {
        let record = fetch(slot)?;
        debug_assert_eq!(record.len(), record_len);
        if record.len() >= FINGERPRINT_LEN && record[..FINGERPRINT_LEN] == fp && found.is_none() {
            found = Some(record[FINGERPRINT_LEN..].to_vec());
        }
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_server::TwoServerClient;

    const RECORD: usize = 64;

    type Setup = (
        CuckooHasher,
        DpfParams,
        PirServer,
        PirServer,
        Vec<(String, Vec<u8>)>,
    );

    fn setup(n: usize) -> Setup {
        // 45% load: n keys in ~2.2n slots.
        let domain_bits = (64 - (n as u64 * 2 + n as u64 / 5).leading_zeros()).max(6);
        let hasher = CuckooHasher::new(&[0x33; 16], domain_bits);
        let params = DpfParams::new(domain_bits, 2.min(domain_bits - 1)).unwrap();
        let pairs: Vec<(String, Vec<u8>)> = (0..n)
            .map(|i| {
                (
                    format!("site.com/page/{i}"),
                    format!("payload {i}").into_bytes(),
                )
            })
            .collect();
        let refs: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(k, v)| (k.as_bytes(), v.as_slice()))
            .collect();
        let s0 = build_cuckoo_server(&hasher, params, RECORD, &refs).unwrap();
        let s1 = s0.clone();
        (hasher, params, s0, s1, pairs)
    }

    fn get(
        hasher: &CuckooHasher,
        client: &TwoServerClient,
        s0: &PirServer,
        s1: &PirServer,
        key: &str,
    ) -> Option<Vec<u8>> {
        cuckoo_private_get(hasher, client, key.as_bytes(), |slot| {
            let q = client.query_slot(slot);
            let a0 = s0.answer(&q.key0)?;
            let a1 = s1.answer(&q.key1)?;
            TwoServerClient::combine(&a0, &a1)
        })
        .unwrap()
    }

    #[test]
    fn every_key_retrievable_at_high_load() {
        let (hasher, params, s0, s1, pairs) = setup(300);
        let client = TwoServerClient::new(params, RECORD);
        for (key, value) in pairs.iter().step_by(17) {
            let got = get(&hasher, &client, &s0, &s1, key).unwrap();
            assert_eq!(&got[..value.len()], &value[..], "{key}");
            assert!(got[value.len()..].iter().all(|&b| b == 0), "padding");
        }
    }

    #[test]
    fn absent_keys_return_none_after_two_probes() {
        let (hasher, params, s0, s1, _) = setup(100);
        let client = TwoServerClient::new(params, RECORD);
        let mut probes = 0;
        let result = cuckoo_private_get(
            &hasher,
            &client,
            b"site.com/not-published",
            |slot| -> Result<Vec<u8>, PirError> {
                probes += 1;
                let q = client.query_slot(slot);
                TwoServerClient::combine(&s0.answer(&q.key0)?, &s1.answer(&q.key1)?)
            },
        )
        .unwrap();
        assert_eq!(result, None);
        assert_eq!(probes, 2, "misses must still probe both candidates");
    }

    #[test]
    fn hits_also_probe_both_candidates() {
        let (hasher, params, s0, s1, pairs) = setup(100);
        let client = TwoServerClient::new(params, RECORD);
        let mut probes = 0;
        let _ = cuckoo_private_get(
            &hasher,
            &client,
            pairs[0].0.as_bytes(),
            |slot| -> Result<Vec<u8>, PirError> {
                probes += 1;
                let q = client.query_slot(slot);
                TwoServerClient::combine(&s0.answer(&q.key0)?, &s1.answer(&q.key1)?)
            },
        )
        .unwrap();
        assert_eq!(probes, 2, "fixed probe count regardless of which slot hits");
    }

    #[test]
    fn wrong_fingerprint_candidate_is_not_returned() {
        // A key whose candidate slot is occupied by a *different* key must
        // not get that record back.
        let (hasher, params, s0, s1, pairs) = setup(300);
        let client = TwoServerClient::new(params, RECORD);
        for probe_key in ["site.com/page/0", "site.com/other/thing", "x.com/y"] {
            if let Some(got) = get(&hasher, &client, &s0, &s1, probe_key) {
                // Only legitimate if the key is actually published.
                assert!(
                    pairs.iter().any(|(k, _)| k == probe_key),
                    "ghost record for {probe_key}: {got:?}"
                );
            }
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        let hasher = CuckooHasher::new(&[1; 16], 8);
        let params = DpfParams::new(8, 2).unwrap();
        let big = vec![0u8; RECORD]; // leaves no room for the fingerprint
        let err =
            build_cuckoo_server(&hasher, params, RECORD, &[(b"k", big.as_slice())]).unwrap_err();
        assert!(matches!(err, CuckooPirError::PayloadLen { .. }));
    }

    #[test]
    #[should_panic(expected = "domain must agree")]
    fn mismatched_domains_rejected() {
        let hasher = CuckooHasher::new(&[1; 16], 8);
        let params = DpfParams::new(10, 2).unwrap();
        let _ = build_cuckoo_server(&hasher, params, RECORD, &[]);
    }
}
