//! Differential proptest suite: every scan-kernel backend must produce
//! bit-identical accumulators to the scalar reference, across the awkward
//! shapes the fast paths are most likely to get wrong — odd record
//! lengths (real stride padding), non-byte-aligned occupied-slot counts,
//! empty batches, batch sizes 1–32, and partial record ranges.

use lightweb_dpf::{gen_with_seeds, BitMatrix, DpfParams};
use lightweb_pir::{KernelBackend, PirServer};
use proptest::prelude::*;

/// Deterministic entries over a domain, with slot spacing chosen so the
/// occupied count is rarely a multiple of 8 (non-byte-aligned scans).
fn entries(params: DpfParams, n: usize, record_len: usize) -> Vec<(u64, Vec<u8>)> {
    (0..n as u64)
        .map(|i| {
            let slot = (i * 2654435761) % params.domain_size();
            let rec: Vec<u8> = (0..record_len)
                .map(|b| (b as u64 * 31 + i * 7 + 1) as u8)
                .collect();
            (slot, rec)
        })
        .collect::<std::collections::BTreeMap<_, _>>()
        .into_iter()
        .collect()
}

/// Evaluated share rows for a batch of queries, straight from real DPF
/// keys so the bit density matches production (~50%).
fn bit_vecs(params: DpfParams, batch: usize) -> Vec<Vec<u8>> {
    (0..batch as u64)
        .map(|i| {
            let alpha = (i * 37 + 5) % params.domain_size();
            let (k0, k1) = gen_with_seeds(&params, alpha, [i as u8; 16], [!(i as u8); 16]);
            if i % 2 == 0 { k0 } else { k1 }.eval_full()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All backends agree with the scalar reference on full scans across
    /// odd record lengths, slot counts, and batch sizes 1–32.
    #[test]
    fn backends_match_scalar_reference(
        domain_bits in 6u32..11,
        n_records in 1usize..60,
        record_len in 1usize..40,
        batch in 1usize..33,
    ) {
        let params = DpfParams::new(domain_bits, 2.min(domain_bits - 1)).unwrap();
        let es = entries(params, n_records, record_len);
        let server = PirServer::from_entries(params, record_len, es).unwrap();
        let rows = bit_vecs(params, batch);
        let reference =
            server.scan_batch_range_with(KernelBackend::Scalar, 0..server.len(), &rows);
        prop_assert_eq!(reference.len(), batch);
        for backend in KernelBackend::ALL {
            let got = server.scan_batch_range_with(backend, 0..server.len(), &rows);
            prop_assert_eq!(&got, &reference, "backend {}", backend.name());
        }
    }

    /// Partial record ranges: any split point produces partials that XOR
    /// back to the full scan, identically on every backend.
    #[test]
    fn partial_ranges_recombine_identically(
        n_records in 1usize..40,
        record_len in 1usize..24,
        split_pick in any::<prop::sample::Index>(),
        batch in 1usize..9,
    ) {
        let params = DpfParams::new(9, 2).unwrap();
        let es = entries(params, n_records, record_len);
        let server = PirServer::from_entries(params, record_len, es).unwrap();
        let rows = bit_vecs(params, batch);
        let split = split_pick.index(server.len() + 1);
        let full_ref =
            server.scan_batch_range_with(KernelBackend::Scalar, 0..server.len(), &rows);
        for backend in KernelBackend::ALL {
            let lo = server.scan_batch_range_with(backend, 0..split, &rows);
            let hi = server.scan_batch_range_with(backend, split..server.len(), &rows);
            let recombined: Vec<Vec<u8>> = lo
                .into_iter()
                .zip(hi)
                .map(|(mut a, b)| {
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x ^= *y;
                    }
                    a
                })
                .collect();
            prop_assert_eq!(&recombined, &full_ref, "backend {} split {}", backend.name(), split);
        }
    }

    /// Empty batches and empty ranges are no-ops on every backend.
    #[test]
    fn empty_batches_and_ranges(
        n_records in 0usize..20,
        record_len in 1usize..16,
    ) {
        let params = DpfParams::new(8, 2).unwrap();
        let es = entries(params, n_records, record_len);
        let server = PirServer::from_entries(params, record_len, es).unwrap();
        let empty: Vec<Vec<u8>> = Vec::new();
        for backend in KernelBackend::ALL {
            prop_assert_eq!(
                server.scan_batch_range_with(backend, 0..server.len(), &empty).len(),
                0
            );
            let rows = bit_vecs(params, 3);
            let accs = server.scan_batch_range_with(backend, 0..0, &rows);
            prop_assert_eq!(accs.len(), 3);
            let zeros = vec![0u8; record_len];
            for acc in &accs {
                prop_assert_eq!(acc.as_slice(), zeros.as_slice());
            }
        }
    }

    /// The matrix entry point agrees with the Vec-of-rows entry point and
    /// with the two-server protocol's reconstruction: whatever the kernel
    /// layout does to the batch, the decoded record is unchanged.
    #[test]
    fn matrix_path_reconstructs_records(
        domain_bits in 6u32..10,
        n_records in 1usize..30,
        record_len in 1usize..32,
        pick in any::<prop::sample::Index>(),
    ) {
        let params = DpfParams::new(domain_bits, 2.min(domain_bits - 1)).unwrap();
        let es = entries(params, n_records, record_len);
        let server0 = PirServer::from_entries(params, record_len, es.clone()).unwrap();
        let server1 = server0.clone();
        let (slot, expected) = &es[pick.index(es.len())];
        let (k0, k1) = gen_with_seeds(&params, *slot, [21; 16], [22; 16]);
        let mut matrix = BitMatrix::new(2, params.output_len());
        k0.eval_full_into(matrix.row_mut(0));
        k1.eval_full_into(matrix.row_mut(1));
        let a0 = &server0.scan_matrix(&matrix).unwrap()[0];
        let a1 = &server1.scan_matrix(&matrix).unwrap()[1];
        let got: Vec<u8> = a0.iter().zip(a1.iter()).map(|(x, y)| x ^ y).collect();
        prop_assert_eq!(&got, expected);
    }
}
