//! Multiple universes per CDN with varying cost/coverage trade-offs
//! (paper §3.5).
//!
//! "A single CDN could group its pages into 'small', 'medium', and 'large'
//! universes where each universe has a different fixed page size. These
//! different universes would allow a CDN to accommodate large pages
//! without adding overhead for fetching small pages, although the CDN (and
//! an attacker observing the network) would learn whether the user is
//! fetching a page from the small, medium, or large universe."
//!
//! [`TieredCdn`] runs one universe per [`Tier`]. Publishing routes each
//! value to the smallest tier whose fixed blob holds it without chaining
//! (falling back to chaining in the largest tier); the client learns which
//! tier a path lives in from public metadata — exactly the tier-level leak
//! the paper accepts — and browses that universe.

use crate::universe::{Tier, Universe, UniverseConfig, UniverseError};
use parking_lot::RwLock;
use std::collections::HashMap;

/// One CDN operating a universe per size tier.
pub struct TieredCdn {
    tiers: Vec<(Tier, Universe)>,
    /// path -> tier placement. Public metadata: which tier a page lives in
    /// is observable anyway (the client connects to that universe).
    placement: RwLock<HashMap<String, Tier>>,
}

impl TieredCdn {
    /// Stand up small/medium/large universes sharing an id prefix.
    pub fn new(id_prefix: &str) -> Result<Self, UniverseError> {
        let mut tiers = Vec::new();
        for tier in [Tier::Small, Tier::Medium, Tier::Large] {
            let mut cfg = UniverseConfig::small_test(&format!("{id_prefix}-{tier:?}"));
            cfg.tier = tier;
            tiers.push((tier, Universe::new(cfg)?));
        }
        Ok(Self {
            tiers,
            placement: RwLock::new(HashMap::new()),
        })
    }

    /// The universe serving `tier`.
    pub fn universe(&self, tier: Tier) -> &Universe {
        &self
            .tiers
            .iter()
            .find(|(t, _)| *t == tier)
            .expect("all tiers present")
            .1
    }

    /// Register a domain across every tier (a publisher may end up with
    /// pages in several).
    pub fn register_domain(&self, domain: &str, publisher: &str) -> Result<(), UniverseError> {
        for (_, u) in &self.tiers {
            u.register_domain(domain, publisher)?;
        }
        Ok(())
    }

    /// Publish code to every tier the publisher's pages might land in.
    pub fn publish_code(
        &self,
        publisher: &str,
        domain: &str,
        code: &str,
    ) -> Result<(), UniverseError> {
        for (_, u) in &self.tiers {
            u.publish_code(publisher, domain, code)?;
        }
        Ok(())
    }

    /// Publish a value into the smallest tier whose single blob holds it;
    /// values too large even for one large blob are chained in the large
    /// tier. Returns the chosen tier.
    pub fn publish_auto(
        &self,
        publisher: &str,
        path: &str,
        value: &[u8],
    ) -> Result<Tier, UniverseError> {
        let chosen = self
            .tiers
            .iter()
            .find(|(tier, _)| value.len() <= crate::blob::blob_capacity(tier.data_blob_len()))
            .map(|(tier, _)| *tier)
            .unwrap_or(Tier::Large);
        self.universe(chosen).publish_data(publisher, path, value)?;
        self.placement.write().insert(path.to_string(), chosen);
        Ok(chosen)
    }

    /// Which tier a path was placed in (public routing metadata).
    pub fn tier_of(&self, path: &str) -> Option<Tier> {
        self.placement.read().get(path).copied()
    }

    /// Per-tier page counts — the CDN's cost/coverage dashboard.
    pub fn tier_populations(&self) -> Vec<(Tier, usize)> {
        self.tiers
            .iter()
            .map(|(t, u)| (*t, u.num_data_values()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightweb_core::TwoServerZltp;

    fn cdn() -> TieredCdn {
        let cdn = TieredCdn::new("akamai").unwrap();
        cdn.register_domain("mix.com", "Mix").unwrap();
        cdn
    }

    #[test]
    fn values_route_to_the_smallest_fitting_tier() {
        let cdn = cdn();
        assert_eq!(
            cdn.publish_auto("Mix", "mix.com/tiny", &[1u8; 100])
                .unwrap(),
            Tier::Small
        );
        assert_eq!(
            cdn.publish_auto("Mix", "mix.com/middling", &[2u8; 2000])
                .unwrap(),
            Tier::Medium
        );
        assert_eq!(
            cdn.publish_auto("Mix", "mix.com/big", &[3u8; 10_000])
                .unwrap(),
            Tier::Large
        );
        assert_eq!(cdn.tier_of("mix.com/tiny"), Some(Tier::Small));
        assert_eq!(cdn.tier_of("mix.com/unknown"), None);
        let pops = cdn.tier_populations();
        assert_eq!(pops.iter().map(|(_, n)| n).sum::<usize>(), 3);
    }

    #[test]
    fn oversized_values_chain_in_the_large_tier() {
        let cdn = cdn();
        // Larger than one 16 KiB blob: chained in Large.
        let tier = cdn
            .publish_auto("Mix", "mix.com/epic", &vec![9u8; 40_000])
            .unwrap();
        assert_eq!(tier, Tier::Large);
    }

    #[test]
    fn each_tier_serves_its_content_via_zltp() {
        let cdn = cdn();
        cdn.publish_auto("Mix", "mix.com/tiny", b"small page")
            .unwrap();
        cdn.publish_auto("Mix", "mix.com/middling", &vec![7u8; 2000])
            .unwrap();

        // Small tier.
        let (c0, c1) = cdn.universe(Tier::Small).connect_data();
        let mut small = TwoServerZltp::connect(c0, c1).unwrap();
        let blob = small.private_get("mix.com/tiny").unwrap();
        assert_eq!(blob.len(), Tier::Small.data_blob_len());
        let (_, payload) = crate::blob::decode_blob(&blob).unwrap();
        assert_eq!(payload, b"small page");

        // Medium tier has the middling page; the small tier does not.
        let (m0, m1) = cdn.universe(Tier::Medium).connect_data();
        let mut medium = TwoServerZltp::connect(m0, m1).unwrap();
        let blob = medium.private_get("mix.com/middling").unwrap();
        assert_eq!(blob.len(), Tier::Medium.data_blob_len());
        let (_, payload) = crate::blob::decode_blob(&blob).unwrap();
        assert_eq!(payload.len(), 2000);

        let zero = small.private_get("mix.com/middling").unwrap();
        let (h, _) = crate::blob::decode_blob(&zero).unwrap();
        assert_eq!(
            h.payload_len, 0,
            "middling page must not be in the small tier"
        );
    }

    #[test]
    fn tier_leak_is_only_the_tier() {
        // Two same-size values in the same tier are indistinguishable: the
        // tier placement reveals size class, never identity.
        let cdn = cdn();
        let t1 = cdn.publish_auto("Mix", "mix.com/a", &[1u8; 500]).unwrap();
        let t2 = cdn.publish_auto("Mix", "mix.com/b", &[2u8; 900]).unwrap();
        assert_eq!(t1, t2, "same size class, same universe");
    }

    #[test]
    fn ownership_enforced_across_tiers() {
        let cdn = cdn();
        assert!(cdn.publish_auto("Mallory", "mix.com/evil", b"x").is_err());
        assert!(cdn.register_domain("mix.com", "Mallory").is_err());
    }
}
