//! The fixed-size blob encoding.
//!
//! Every blob in a universe is exactly the universe's fixed size — that is
//! the whole point (§3.1): a ZLTP response leaks nothing about which page
//! was fetched partly *because* every page occupies an identical bucket.
//! Inside the fixed envelope we need to know how much of it is real
//! payload, and §5 adds: "any values longer than this can be broken up and
//! retrieved separately (i.e. the user can click a 'next' link)". So a blob
//! is:
//!
//! ```text
//! byte 0      flags: bit 0 = a continuation blob follows
//! bytes 1..5  u32 BE payload length within this blob
//! bytes 5..   payload, then zero padding to the fixed size
//! ```
//!
//! Continuations live at derived paths `path#part1`, `path#part2`, … so
//! the reader can fetch the chain with ordinary private-GETs. Each link in
//! the chain costs one fetch — which is why lightweb encourages small
//! pages, and why the browser budget (fixed fetch count per page view)
//! caps how long a chain a page may use.

/// Blob header overhead in bytes.
pub const BLOB_HEADER_LEN: usize = 5;

const FLAG_HAS_NEXT: u8 = 0b0000_0001;

/// Decoded blob header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlobHeader {
    /// Whether a continuation blob follows at the next derived path.
    pub has_next: bool,
    /// Payload bytes present in this blob.
    pub payload_len: usize,
}

/// Errors from blob encoding/decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlobError {
    /// The value cannot fit in `max_parts` chained blobs of this size.
    TooLarge {
        /// The value's length in bytes.
        value_len: usize,
        /// Total payload capacity of the chain.
        capacity: usize,
    },
    /// The blob is smaller than its header claims (corrupt or truncated).
    Corrupt(String),
    /// Blob size too small to hold the header.
    BlobTooSmall(usize),
}

impl std::fmt::Display for BlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlobError::TooLarge {
                value_len,
                capacity,
            } => {
                write!(
                    f,
                    "value of {value_len} bytes exceeds chain capacity {capacity}"
                )
            }
            BlobError::Corrupt(m) => write!(f, "corrupt blob: {m}"),
            BlobError::BlobTooSmall(n) => write!(f, "blob size {n} cannot hold a header"),
        }
    }
}

impl std::error::Error for BlobError {}

/// Payload capacity of a single blob of `blob_len` bytes.
pub fn blob_capacity(blob_len: usize) -> usize {
    blob_len.saturating_sub(BLOB_HEADER_LEN)
}

/// The derived path of continuation part `n` (n >= 1) of `path`.
pub fn continuation_path(path: &str, n: usize) -> String {
    format!("{path}#part{n}")
}

/// Encode a value that fits in one blob. Fails if it does not fit.
pub fn encode_blob(value: &[u8], blob_len: usize) -> Result<Vec<u8>, BlobError> {
    if blob_len < BLOB_HEADER_LEN {
        return Err(BlobError::BlobTooSmall(blob_len));
    }
    if value.len() > blob_capacity(blob_len) {
        return Err(BlobError::TooLarge {
            value_len: value.len(),
            capacity: blob_capacity(blob_len),
        });
    }
    let mut out = vec![0u8; blob_len];
    out[0] = 0;
    out[1..5].copy_from_slice(&(value.len() as u32).to_be_bytes());
    out[BLOB_HEADER_LEN..BLOB_HEADER_LEN + value.len()].copy_from_slice(value);
    Ok(out)
}

/// Encode a value of any size into a chain of fixed-size blobs, capped at
/// `max_parts` blobs (the browser's fetch budget).
///
/// Returns the blobs in order; blob `i > 0` belongs at
/// [`continuation_path`]`(path, i)`.
pub fn encode_chain(
    value: &[u8],
    blob_len: usize,
    max_parts: usize,
) -> Result<Vec<Vec<u8>>, BlobError> {
    if blob_len < BLOB_HEADER_LEN {
        return Err(BlobError::BlobTooSmall(blob_len));
    }
    let cap = blob_capacity(blob_len);
    let total_capacity = cap * max_parts;
    if value.len() > total_capacity {
        return Err(BlobError::TooLarge {
            value_len: value.len(),
            capacity: total_capacity,
        });
    }
    let parts: Vec<&[u8]> = if value.is_empty() {
        vec![&[][..]]
    } else {
        value.chunks(cap).collect()
    };
    let mut blobs = Vec::with_capacity(parts.len());
    for (i, part) in parts.iter().enumerate() {
        let mut blob = vec![0u8; blob_len];
        blob[0] = if i + 1 < parts.len() {
            FLAG_HAS_NEXT
        } else {
            0
        };
        blob[1..5].copy_from_slice(&(part.len() as u32).to_be_bytes());
        blob[BLOB_HEADER_LEN..BLOB_HEADER_LEN + part.len()].copy_from_slice(part);
        blobs.push(blob);
    }
    Ok(blobs)
}

/// Decode one blob into its header and payload slice.
pub fn decode_blob(blob: &[u8]) -> Result<(BlobHeader, &[u8]), BlobError> {
    if blob.len() < BLOB_HEADER_LEN {
        return Err(BlobError::Corrupt(format!(
            "{} bytes is below header size",
            blob.len()
        )));
    }
    let flags = blob[0];
    if flags & !FLAG_HAS_NEXT != 0 {
        return Err(BlobError::Corrupt(format!("unknown flags {flags:#x}")));
    }
    let len = u32::from_be_bytes(blob[1..5].try_into().unwrap()) as usize;
    if len > blob.len() - BLOB_HEADER_LEN {
        return Err(BlobError::Corrupt(format!(
            "payload length {len} exceeds blob capacity {}",
            blob.len() - BLOB_HEADER_LEN
        )));
    }
    Ok((
        BlobHeader {
            has_next: flags & FLAG_HAS_NEXT != 0,
            payload_len: len,
        },
        &blob[BLOB_HEADER_LEN..BLOB_HEADER_LEN + len],
    ))
}

/// Reassemble a chain fetched blob-by-blob. The `fetch` callback receives
/// the part index (0 = the base path) and returns that blob's bytes.
/// `max_parts` bounds the walk so a corrupt chain cannot loop forever.
pub fn decode_chain(
    max_parts: usize,
    mut fetch: impl FnMut(usize) -> Result<Vec<u8>, BlobError>,
) -> Result<Vec<u8>, BlobError> {
    let mut out = Vec::new();
    for i in 0..max_parts {
        let blob = fetch(i)?;
        let (header, payload) = decode_blob(&blob)?;
        out.extend_from_slice(payload);
        if !header.has_next {
            return Ok(out);
        }
    }
    Err(BlobError::Corrupt(format!(
        "chain exceeds {max_parts} parts"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_blob_roundtrip() {
        let blob = encode_blob(b"hello lightweb", 64).unwrap();
        assert_eq!(blob.len(), 64);
        let (header, payload) = decode_blob(&blob).unwrap();
        assert!(!header.has_next);
        assert_eq!(payload, b"hello lightweb");
    }

    #[test]
    fn empty_value_roundtrip() {
        let blob = encode_blob(b"", 16).unwrap();
        let (header, payload) = decode_blob(&blob).unwrap();
        assert_eq!(header.payload_len, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn exact_fit_roundtrip() {
        let value = vec![7u8; 59]; // 64 - 5
        let blob = encode_blob(&value, 64).unwrap();
        let (_, payload) = decode_blob(&blob).unwrap();
        assert_eq!(payload, &value[..]);
    }

    #[test]
    fn oversize_single_blob_rejected() {
        assert!(matches!(
            encode_blob(&[0u8; 60], 64),
            Err(BlobError::TooLarge {
                value_len: 60,
                capacity: 59
            })
        ));
    }

    #[test]
    fn chain_roundtrip_various_sizes() {
        for value_len in [0usize, 1, 59, 60, 118, 200, 590] {
            let value: Vec<u8> = (0..value_len).map(|i| (i % 251) as u8).collect();
            let blobs = encode_chain(&value, 64, 16).unwrap();
            assert!(blobs.iter().all(|b| b.len() == 64), "fixed size violated");
            let got = decode_chain(16, |i| {
                blobs
                    .get(i)
                    .cloned()
                    .ok_or(BlobError::Corrupt("missing part".into()))
            })
            .unwrap();
            assert_eq!(got, value, "value_len={value_len}");
        }
    }

    #[test]
    fn chain_part_count_is_minimal() {
        let blobs = encode_chain(&[0u8; 118], 64, 16).unwrap(); // 2 * 59
        assert_eq!(blobs.len(), 2);
        let blobs = encode_chain(&[0u8; 119], 64, 16).unwrap();
        assert_eq!(blobs.len(), 3);
    }

    #[test]
    fn chain_budget_enforced() {
        assert!(matches!(
            encode_chain(&[0u8; 59 * 3 + 1], 64, 3),
            Err(BlobError::TooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_blobs_rejected() {
        // Header claims more payload than the blob holds.
        let mut blob = encode_blob(b"x", 16).unwrap();
        blob[1..5].copy_from_slice(&100u32.to_be_bytes());
        assert!(matches!(decode_blob(&blob), Err(BlobError::Corrupt(_))));
        // Unknown flag bits.
        let mut blob2 = encode_blob(b"x", 16).unwrap();
        blob2[0] = 0x80;
        assert!(matches!(decode_blob(&blob2), Err(BlobError::Corrupt(_))));
        // Too short for a header.
        assert!(matches!(decode_blob(&[0u8; 3]), Err(BlobError::Corrupt(_))));
    }

    #[test]
    fn runaway_chain_detected() {
        // Every blob claims a continuation; the walk must stop at the cap.
        let mut blob = encode_blob(b"loop", 32).unwrap();
        blob[0] = 0x01;
        let err = decode_chain(5, |_| Ok(blob.clone())).unwrap_err();
        assert!(matches!(err, BlobError::Corrupt(_)));
    }

    #[test]
    fn continuation_paths_are_distinct() {
        assert_eq!(continuation_path("a.com/x", 1), "a.com/x#part1");
        assert_ne!(
            continuation_path("a.com/x", 1),
            continuation_path("a.com/x", 2)
        );
    }

    #[test]
    fn tiny_blob_sizes_rejected() {
        assert!(matches!(
            encode_blob(b"", 4),
            Err(BlobError::BlobTooSmall(4))
        ));
        assert!(matches!(
            encode_chain(b"", 4, 2),
            Err(BlobError::BlobTooSmall(4))
        ));
    }

    #[test]
    fn padding_is_zeroed() {
        // Deterministic padding matters: identical logical content must
        // produce identical blobs (dedup, peering comparisons).
        let a = encode_blob(b"same", 64).unwrap();
        let b = encode_blob(b"same", 64).unwrap();
        assert_eq!(a, b);
        assert!(a[BLOB_HEADER_LEN + 4..].iter().all(|&x| x == 0));
    }
}
