//! The content universe: ownership, publishing, and serving (paper §3).
//!
//! A [`Universe`] bundles what one CDN runs for one universe:
//!
//! * **two** logical ZLTP servers for data blobs (the non-colluding pair of
//!   the two-server PIR mode — in a real deployment these are operated by
//!   different parties; here they are two independent server instances),
//! * two more for **code blobs**, which live in "a separate 'universe' from
//!   the other key-value pairs" with their own, larger fixed size (§3.2),
//! * the **ownership registry** mapping each top-level domain to the single
//!   publisher that controls all paths beneath it (§3.1), and
//! * the raw-content book of record that peering (§3.5) replicates.
//!
//! Size tiers (§3.5): a CDN can run "small", "medium" and "large" universes
//! with different fixed page sizes so big pages don't tax small fetches;
//! [`Tier`] captures the three presets.

use crate::blob::{continuation_path, encode_chain, BlobError};
use lightweb_core::{InProcServer, MemDuplex, ServerConfig, ZltpServer};
use lightweb_store::{DurableStore, StoreConfig, StoreOp, StoreState, ValueRepr};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;

/// Universe size tiers (§3.5): different fixed data-blob sizes, different
/// per-request cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// 1 KiB data blobs — text-only pages, cheapest requests.
    Small,
    /// 4 KiB data blobs — the paper's §5.1 operating point.
    Medium,
    /// 16 KiB data blobs — richer pages at higher per-request cost.
    Large,
}

impl Tier {
    /// The fixed data-blob size of this tier.
    pub fn data_blob_len(self) -> usize {
        match self {
            Tier::Small => 1024,
            Tier::Medium => 4096,
            Tier::Large => 16384,
        }
    }
}

/// Configuration of one universe.
#[derive(Clone, Debug)]
pub struct UniverseConfig {
    /// Universe identifier (unique per CDN).
    pub id: String,
    /// Size tier, fixing the data-blob size.
    pub tier: Tier,
    /// log2 of the data-blob slot domain.
    pub data_domain_bits: u32,
    /// log2 of the code-blob slot domain (one slot per domain; far fewer
    /// needed).
    pub code_domain_bits: u32,
    /// Fixed code-blob size. The paper floats 1 MiB; tests use less.
    pub code_blob_len: usize,
    /// Maximum chained parts for one oversized value (bounded by the
    /// browser's fixed fetch budget).
    pub max_chain_parts: usize,
    /// The universe-wide fixed number of data fetches per page view
    /// (§3.2). Browsers pad to this with dummy queries.
    pub fetches_per_page: usize,
}

impl UniverseConfig {
    /// A compact test/example universe.
    pub fn small_test(id: &str) -> Self {
        Self {
            id: id.to_string(),
            tier: Tier::Small,
            data_domain_bits: 14,
            code_domain_bits: 10,
            code_blob_len: 8192,
            max_chain_parts: 4,
            fetches_per_page: 5,
        }
    }
}

/// Why a lightweb path failed validation (§3.1: "it must have a valid
/// domain as the top-level path component").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The path is empty.
    Empty,
    /// No `/` separator: a bare domain names a code blob, not a data path.
    BareDomain,
    /// The path ends with `/`, leaving an empty final component.
    TrailingSlash,
    /// An interior path component is empty (`a.com//x`).
    EmptySegment,
    /// The top-level component is not a valid DNS-style domain.
    BadDomain,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Empty => write!(f, "path is empty"),
            PathError::BareDomain => write!(f, "bare domain with no path component"),
            PathError::TrailingSlash => write!(f, "trailing slash"),
            PathError::EmptySegment => write!(f, "empty path component"),
            PathError::BadDomain => write!(f, "top-level component is not a valid domain"),
        }
    }
}

/// Errors from universe operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UniverseError {
    /// Domain syntax is invalid (must look like a DNS name).
    InvalidDomain(String),
    /// A path must start with a registered domain component.
    InvalidPath {
        /// The offending path.
        path: String,
        /// What exactly is wrong with it.
        reason: PathError,
    },
    /// The durable backend failed; the in-memory and on-disk universes
    /// may now disagree, so the operation is reported as failed.
    Storage(String),
    /// The domain is already registered to someone else.
    AlreadyRegistered {
        /// The contested domain.
        domain: String,
        /// Its current owner.
        owner: String,
    },
    /// The acting publisher does not own the path's domain.
    NotOwner {
        /// The domain in question.
        domain: String,
        /// Its registered owner, if any.
        owner: Option<String>,
    },
    /// The keyword hashed onto an occupied slot; pick another name (§5.1).
    KeywordCollision(String),
    /// Value too large for the chain budget.
    Blob(String),
    /// Underlying ZLTP server failure.
    Server(String),
    /// Code blob exceeds the code universe's fixed size.
    CodeTooLarge {
        /// The offending code size in bytes.
        len: usize,
        /// The code universe's fixed blob size.
        max: usize,
    },
}

impl std::fmt::Display for UniverseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UniverseError::InvalidDomain(d) => write!(f, "invalid domain '{d}'"),
            UniverseError::InvalidPath { path, reason } => {
                write!(f, "invalid path '{path}': {reason}")
            }
            UniverseError::Storage(m) => write!(f, "durable store: {m}"),
            UniverseError::AlreadyRegistered { domain, owner } => {
                write!(f, "domain '{domain}' is registered to '{owner}'")
            }
            UniverseError::NotOwner { domain, owner } => write!(
                f,
                "not the owner of '{domain}' (owner: {})",
                owner.as_deref().unwrap_or("<unregistered>")
            ),
            UniverseError::KeywordCollision(m) => write!(f, "keyword collision: {m}"),
            UniverseError::Blob(m) => write!(f, "blob encoding: {m}"),
            UniverseError::Server(m) => write!(f, "server: {m}"),
            UniverseError::CodeTooLarge { len, max } => {
                write!(
                    f,
                    "code blob is {len} bytes; the code universe serves {max}"
                )
            }
        }
    }
}

impl std::error::Error for UniverseError {}

impl From<BlobError> for UniverseError {
    fn from(e: BlobError) -> Self {
        UniverseError::Blob(e.to_string())
    }
}

/// One CDN-operated lightweb universe.
pub struct Universe {
    config: UniverseConfig,
    data: [InProcServer; 2],
    code: [InProcServer; 2],
    /// domain -> publisher id.
    ownership: RwLock<HashMap<String, String>>,
    /// Book of record: path -> raw (pre-chaining) value. What peering
    /// replicates, and what re-publication after key rotation re-reads.
    content: RwLock<BTreeMap<String, Vec<u8>>>,
    /// domain -> raw code text.
    code_content: RwLock<BTreeMap<String, String>>,
    /// Optional durable backend: every mutation is journaled through it,
    /// and [`Universe::open_durable`] rebuilds the universe from it.
    backend: Option<DurableStore>,
    /// Serializes mutate-then-journal sequences so WAL order matches
    /// in-memory order and snapshots capture a consistent state.
    mutate: Mutex<()>,
}

impl Universe {
    /// Stand up a universe: four ZLTP server instances (data pair + code
    /// pair) with consistent keyword hashing.
    pub fn new(config: UniverseConfig) -> Result<Self, UniverseError> {
        let mk = |universe_id: String, blob_len: usize, domain_bits: u32, party: u8| {
            let mut c = ServerConfig::small(&universe_id, party);
            c.blob_len = blob_len;
            c.domain_bits = domain_bits;
            c.term_bits = 7.min(domain_bits - 1);
            ZltpServer::new(c).map_err(|e| UniverseError::Server(e.to_string()))
        };
        let data_id = format!("{}/data", config.id);
        let code_id = format!("{}/code", config.id);
        let data = [
            InProcServer::new(mk(
                data_id.clone(),
                config.tier.data_blob_len(),
                config.data_domain_bits,
                0,
            )?),
            InProcServer::new(mk(
                data_id,
                config.tier.data_blob_len(),
                config.data_domain_bits,
                1,
            )?),
        ];
        let code = [
            InProcServer::new(mk(
                code_id.clone(),
                config.code_blob_len,
                config.code_domain_bits,
                0,
            )?),
            InProcServer::new(mk(
                code_id,
                config.code_blob_len,
                config.code_domain_bits,
                1,
            )?),
        ];
        Ok(Self {
            config,
            data,
            code,
            ownership: RwLock::new(HashMap::new()),
            content: RwLock::new(BTreeMap::new()),
            code_content: RwLock::new(BTreeMap::new()),
            backend: None,
            mutate: Mutex::new(()),
        })
    }

    /// Stand up a durable universe rooted at `state_dir`: run the store's
    /// crash recovery, re-publish the recovered book of record through the
    /// ZLTP server pairs (re-seeding the PIR/DPF databases), and journal
    /// every subsequent mutation.
    pub fn open_durable(
        config: UniverseConfig,
        state_dir: &Path,
        store_cfg: StoreConfig,
    ) -> Result<Self, UniverseError> {
        let (store, state) = DurableStore::open(state_dir, store_cfg).map_err(storage_err)?;
        let mut u = Self::new(config)?;
        u.restore(&state)?;
        u.backend = Some(store);
        Ok(u)
    }

    /// Replay a recovered [`StoreState`] into the (empty) in-memory
    /// universe and its ZLTP servers. Not journaled — the state came from
    /// the journal.
    fn restore(&self, state: &StoreState) -> Result<(), UniverseError> {
        for (domain, publisher) in &state.domains {
            self.register_domain_in_memory(domain, publisher)?;
        }
        for (domain, code) in &state.code {
            let owner = state.domains.get(domain).ok_or_else(|| {
                UniverseError::Storage(format!("recovered code for unregistered domain {domain}"))
            })?;
            self.publish_code_in_memory(owner, domain, code)?;
        }
        for (path, value) in &state.data {
            let domain = Self::domain_of(path)?;
            let owner = state.domains.get(domain).ok_or_else(|| {
                UniverseError::Storage(format!(
                    "recovered value at {path} under unregistered domain"
                ))
            })?;
            self.publish_data_in_memory(owner, path, value)?;
        }
        Ok(())
    }

    /// Whether mutations are being journaled to a durable store.
    pub fn is_durable(&self) -> bool {
        self.backend.is_some()
    }

    /// The durable backend, if any (introspection: seq, snapshot cadence).
    pub fn backend(&self) -> Option<&DurableStore> {
        self.backend.as_ref()
    }

    /// Journal one mutation, auto-snapshotting on the configured cadence.
    /// Called with the `mutate` lock held, after the in-memory mutation
    /// succeeded.
    fn journal(&self, op: StoreOp) -> Result<(), UniverseError> {
        let Some(store) = &self.backend else {
            return Ok(());
        };
        store.append(&op).map_err(storage_err)?;
        if store.should_snapshot() {
            store.snapshot(&self.store_state()).map_err(storage_err)?;
        }
        Ok(())
    }

    /// The universe's book of record as a [`StoreState`] (what snapshots
    /// serialize).
    pub fn store_state(&self) -> StoreState {
        StoreState {
            domains: self
                .ownership
                .read()
                .iter()
                .map(|(d, p)| (d.clone(), p.clone()))
                .collect(),
            code: self.code_content.read().clone(),
            data: self.content.read().clone(),
        }
    }

    /// Force a snapshot + compaction of the durable backend now.
    pub fn snapshot_now(&self) -> Result<(), UniverseError> {
        let _g = self.mutate.lock();
        match &self.backend {
            Some(store) => store.snapshot(&self.store_state()).map_err(storage_err),
            None => Err(UniverseError::Storage(
                "universe has no durable backend".into(),
            )),
        }
    }

    /// The universe configuration.
    pub fn config(&self) -> &UniverseConfig {
        &self.config
    }

    /// The universe id.
    pub fn id(&self) -> &str {
        &self.config.id
    }

    /// Extract the domain (top-level path component) of a lightweb data
    /// path. §3.1: "it must have a valid domain as the top-level path
    /// component; otherwise, the path may have any format." — with the
    /// caveats that a data path must actually have a component *below*
    /// the domain (the bare domain slot is the code blob's), and empty
    /// components would alias distinct-looking paths onto each other.
    pub fn domain_of(path: &str) -> Result<&str, UniverseError> {
        let fail = |reason| {
            Err(UniverseError::InvalidPath {
                path: path.to_string(),
                reason,
            })
        };
        if path.is_empty() {
            return fail(PathError::Empty);
        }
        let Some((domain, rest)) = path.split_once('/') else {
            return fail(PathError::BareDomain);
        };
        if rest.is_empty() || rest.ends_with('/') {
            return fail(PathError::TrailingSlash);
        }
        if rest.split('/').any(str::is_empty) {
            return fail(PathError::EmptySegment);
        }
        if !Self::is_valid_domain(domain) {
            return fail(PathError::BadDomain);
        }
        Ok(domain)
    }

    fn is_valid_domain(domain: &str) -> bool {
        !domain.is_empty()
            && domain.len() <= 253
            && domain.contains('.')
            && !domain.starts_with('.')
            && !domain.ends_with('.')
            && domain
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-')
    }

    // ------------------------------------------------------------------
    // Ownership (§3.1: "The CDN is responsible for managing ownership of
    // path prefixes within a universe.")
    // ------------------------------------------------------------------

    /// Register `domain` to `publisher`. First come, first served;
    /// re-registration by the same publisher is a no-op.
    pub fn register_domain(&self, domain: &str, publisher: &str) -> Result<(), UniverseError> {
        let _g = self.mutate.lock();
        self.register_domain_in_memory(domain, publisher)?;
        self.journal(StoreOp::RegisterDomain {
            domain: domain.to_string(),
            publisher: publisher.to_string(),
        })
    }

    fn register_domain_in_memory(
        &self,
        domain: &str,
        publisher: &str,
    ) -> Result<(), UniverseError> {
        if !Self::is_valid_domain(domain) {
            return Err(UniverseError::InvalidDomain(domain.to_string()));
        }
        let mut owners = self.ownership.write();
        match owners.get(domain) {
            Some(owner) if owner != publisher => Err(UniverseError::AlreadyRegistered {
                domain: domain.to_string(),
                owner: owner.clone(),
            }),
            _ => {
                owners.insert(domain.to_string(), publisher.to_string());
                Ok(())
            }
        }
    }

    /// Who owns `domain`, if anyone.
    pub fn owner_of(&self, domain: &str) -> Option<String> {
        self.ownership.read().get(domain).cloned()
    }

    fn check_owner(&self, domain: &str, publisher: &str) -> Result<(), UniverseError> {
        match self.owner_of(domain) {
            Some(o) if o == publisher => Ok(()),
            owner => Err(UniverseError::NotOwner {
                domain: domain.to_string(),
                owner,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Publishing
    // ------------------------------------------------------------------

    /// Publish a domain's code blob (its routing/rendering program).
    pub fn publish_code(
        &self,
        publisher: &str,
        domain: &str,
        code: &str,
    ) -> Result<(), UniverseError> {
        let _g = self.mutate.lock();
        self.publish_code_in_memory(publisher, domain, code)?;
        self.journal(StoreOp::PublishCode {
            publisher: publisher.to_string(),
            domain: domain.to_string(),
            code: code.to_string(),
        })
    }

    fn publish_code_in_memory(
        &self,
        publisher: &str,
        domain: &str,
        code: &str,
    ) -> Result<(), UniverseError> {
        self.check_owner(domain, publisher)?;
        let encoded = crate::blob::encode_blob(code.as_bytes(), self.config.code_blob_len)
            .map_err(|e| match e {
                BlobError::TooLarge { value_len, .. } => UniverseError::CodeTooLarge {
                    len: value_len,
                    max: self.config.code_blob_len,
                },
                other => other.into(),
            })?;
        for server in &self.code {
            server
                .server()
                .publish(domain, &encoded)
                .map_err(|e| map_publish_err(&e.to_string()))?;
        }
        self.code_content
            .write()
            .insert(domain.to_string(), code.to_string());
        Ok(())
    }

    /// Publish a data value at `path`, chaining across blobs if needed.
    /// Returns the number of blobs written.
    pub fn publish_data(
        &self,
        publisher: &str,
        path: &str,
        value: &[u8],
    ) -> Result<usize, UniverseError> {
        let _g = self.mutate.lock();
        let parts = self.publish_data_in_memory(publisher, path, value)?;
        self.journal(StoreOp::PublishData {
            publisher: publisher.to_string(),
            path: path.to_string(),
            value: ValueRepr::Inline(value.to_vec()),
        })?;
        Ok(parts)
    }

    fn publish_data_in_memory(
        &self,
        publisher: &str,
        path: &str,
        value: &[u8],
    ) -> Result<usize, UniverseError> {
        let domain = Self::domain_of(path)?;
        self.check_owner(domain, publisher)?;
        let blob_len = self.config.tier.data_blob_len();
        let blobs = encode_chain(value, blob_len, self.config.max_chain_parts)?;
        for (i, blob) in blobs.iter().enumerate() {
            let part_path = if i == 0 {
                path.to_string()
            } else {
                continuation_path(path, i)
            };
            for server in &self.data {
                server
                    .server()
                    .publish(&part_path, blob)
                    .map_err(|e| map_publish_err(&e.to_string()))?;
            }
        }
        self.content
            .write()
            .insert(path.to_string(), value.to_vec());
        Ok(blobs.len())
    }

    /// Publish a JSON value at `path` (the §3.2 data-blob convention).
    pub fn publish_json(
        &self,
        publisher: &str,
        path: &str,
        value: &crate::json::Value,
    ) -> Result<usize, UniverseError> {
        self.publish_data(publisher, path, value.to_json().as_bytes())
    }

    /// Remove a data value and its continuation parts.
    pub fn unpublish_data(&self, publisher: &str, path: &str) -> Result<bool, UniverseError> {
        let _g = self.mutate.lock();
        let existed = self.unpublish_data_in_memory(publisher, path)?;
        if existed {
            self.journal(StoreOp::UnpublishData {
                publisher: publisher.to_string(),
                path: path.to_string(),
            })?;
        }
        Ok(existed)
    }

    fn unpublish_data_in_memory(&self, publisher: &str, path: &str) -> Result<bool, UniverseError> {
        let domain = Self::domain_of(path)?;
        self.check_owner(domain, publisher)?;
        let existed = self.content.write().remove(path).is_some();
        if existed {
            for server in &self.data {
                server
                    .server()
                    .unpublish(path)
                    .map_err(|e| UniverseError::Server(e.to_string()))?;
                for i in 1..=self.config.max_chain_parts {
                    let p = continuation_path(path, i);
                    if !server
                        .server()
                        .unpublish(&p)
                        .map_err(|e| UniverseError::Server(e.to_string()))?
                    {
                        break;
                    }
                }
            }
        }
        Ok(existed)
    }

    // ------------------------------------------------------------------
    // Serving
    // ------------------------------------------------------------------

    /// Open a connection pair to the data universe (one per party).
    pub fn connect_data(&self) -> (MemDuplex, MemDuplex) {
        (self.data[0].connect(), self.data[1].connect())
    }

    /// Open a connection pair to the code universe.
    pub fn connect_code(&self) -> (MemDuplex, MemDuplex) {
        (self.code[0].connect(), self.code[1].connect())
    }

    /// The data-universe server pair (benchmark access).
    pub fn data_servers(&self) -> [&ZltpServer; 2] {
        [self.data[0].server(), self.data[1].server()]
    }

    // ------------------------------------------------------------------
    // Introspection & peering support
    // ------------------------------------------------------------------

    /// Number of published data values (pre-chaining).
    pub fn num_data_values(&self) -> usize {
        self.content.read().len()
    }

    /// Number of domains with code published.
    pub fn num_code_blobs(&self) -> usize {
        self.code_content.read().len()
    }

    /// Registered domains.
    pub fn domains(&self) -> Vec<String> {
        self.ownership.read().keys().cloned().collect()
    }

    /// Export everything under `domain` for peering: the owner, the code,
    /// and all data values.
    pub fn export_domain(&self, domain: &str) -> Option<DomainExport> {
        let owner = self.owner_of(domain)?;
        let code = self.code_content.read().get(domain).cloned();
        let prefix = format!("{domain}/");
        let values: Vec<(String, Vec<u8>)> = self
            .content
            .read()
            .iter()
            .filter(|(p, _)| p.as_str() == domain || p.starts_with(&prefix))
            .map(|(p, v)| (p.clone(), v.clone()))
            .collect();
        Some(DomainExport {
            domain: domain.to_string(),
            owner,
            code,
            values,
        })
    }
}

/// A domain's full content, as shipped between peered universes (§3.5).
#[derive(Clone, Debug)]
pub struct DomainExport {
    /// The domain.
    pub domain: String,
    /// Its registered owner.
    pub owner: String,
    /// The code blob text, if published.
    pub code: Option<String>,
    /// All data values under the domain.
    pub values: Vec<(String, Vec<u8>)>,
}

fn storage_err(e: lightweb_store::StoreError) -> UniverseError {
    UniverseError::Storage(e.to_string())
}

fn map_publish_err(msg: &str) -> UniverseError {
    if msg.contains("collision") {
        UniverseError::KeywordCollision(msg.to_string())
    } else {
        UniverseError::Server(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightweb_core::TwoServerZltp;

    fn universe() -> Universe {
        Universe::new(UniverseConfig::small_test("test")).unwrap()
    }

    #[test]
    fn domain_extraction_and_validation() {
        assert_eq!(
            Universe::domain_of("nytimes.com/world/africa").unwrap(),
            "nytimes.com"
        );
        assert_eq!(Universe::domain_of("a.b/x").unwrap(), "a.b");
        for bad in [
            "",
            "/x",
            "nodot/x",
            "UPPER.com/x",
            ".dot.com/x",
            "dot.com./x",
        ] {
            assert!(Universe::domain_of(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn domain_of_reports_typed_reasons() {
        let reason = |p: &str| match Universe::domain_of(p) {
            Err(UniverseError::InvalidPath { path, reason }) => {
                assert_eq!(path, p);
                reason
            }
            other => panic!("expected InvalidPath for {p:?}, got {other:?}"),
        };
        assert_eq!(reason(""), PathError::Empty);
        assert_eq!(reason("a.com"), PathError::BareDomain);
        assert_eq!(reason("a.com/"), PathError::TrailingSlash);
        assert_eq!(reason("a.com/x/"), PathError::TrailingSlash);
        assert_eq!(reason("a.com//x"), PathError::EmptySegment);
        assert_eq!(reason("a.com/x//y"), PathError::EmptySegment);
        assert_eq!(reason("/x"), PathError::BadDomain);
        assert_eq!(reason("nodot/x"), PathError::BadDomain);
        // The '#' of continuation paths is an ordinary path byte.
        assert_eq!(Universe::domain_of("a.com/x#part1").unwrap(), "a.com");
        // Inner segments may contain dots, spaces, anything but '/'.
        assert_eq!(Universe::domain_of("a.com/x.y z").unwrap(), "a.com");
    }

    #[test]
    fn malformed_paths_rejected_end_to_end() {
        let u = universe();
        u.register_domain("a.com", "A").unwrap();
        for bad in ["a.com", "a.com/", "a.com//x", "a.com/x/"] {
            assert!(
                matches!(
                    u.publish_data("A", bad, b"v"),
                    Err(UniverseError::InvalidPath { .. })
                ),
                "publish accepted {bad:?}"
            );
            assert!(
                matches!(
                    u.unpublish_data("A", bad),
                    Err(UniverseError::InvalidPath { .. })
                ),
                "unpublish accepted {bad:?}"
            );
        }
    }

    #[test]
    fn unpublish_not_found_through_live_zltp_session() {
        let u = universe();
        u.register_domain("news.org", "N").unwrap();
        u.publish_data("N", "news.org/story", b"breaking").unwrap();

        let (c0, c1) = u.connect_data();
        let mut client = TwoServerZltp::connect(c0, c1).unwrap();
        let blob = client.private_get("news.org/story").unwrap();
        let (_, payload) = crate::blob::decode_blob(&blob).unwrap();
        assert_eq!(payload, b"breaking");

        assert!(u.unpublish_data("N", "news.org/story").unwrap());

        // Both servers now hold nothing at the slot: a fresh session's
        // private-GET combines to the all-zero blob, which decodes to an
        // empty payload (the encoding's length prefix exists exactly so
        // "unpublished" is recognizable).
        let (c0, c1) = u.connect_data();
        let mut client = TwoServerZltp::connect(c0, c1).unwrap();
        let blob = client.private_get("news.org/story").unwrap();
        let (header, payload) = crate::blob::decode_blob(&blob).unwrap();
        assert!(!header.has_next);
        assert!(payload.is_empty(), "unpublished key must read as empty");
        for s in u.data_servers() {
            assert!(!s.contains("news.org/story"));
        }
    }

    #[test]
    fn ownership_is_first_come_first_served() {
        let u = universe();
        u.register_domain("nytimes.com", "NYTimes").unwrap();
        u.register_domain("nytimes.com", "NYTimes").unwrap(); // idempotent
        assert_eq!(
            u.register_domain("nytimes.com", "Imposter"),
            Err(UniverseError::AlreadyRegistered {
                domain: "nytimes.com".into(),
                owner: "NYTimes".into()
            })
        );
        assert_eq!(u.owner_of("nytimes.com").as_deref(), Some("NYTimes"));
        assert_eq!(u.owner_of("cnn.com"), None);
    }

    #[test]
    fn only_owner_can_publish_under_domain() {
        let u = universe();
        u.register_domain("cnn.com", "CNN").unwrap();
        assert!(u.publish_data("CNN", "cnn.com/world", b"ok").is_ok());
        assert!(matches!(
            u.publish_data("Mallory", "cnn.com/world", b"evil"),
            Err(UniverseError::NotOwner { .. })
        ));
        assert!(matches!(
            u.publish_data("CNN", "unregistered.org/x", b"?"),
            Err(UniverseError::NotOwner { .. })
        ));
    }

    #[test]
    fn published_data_is_retrievable_via_zltp() {
        let u = universe();
        u.register_domain("example.com", "Ex").unwrap();
        u.publish_data("Ex", "example.com/hello", b"hello world")
            .unwrap();

        let (c0, c1) = u.connect_data();
        let mut client = TwoServerZltp::connect(c0, c1).unwrap();
        let blob = client.private_get("example.com/hello").unwrap();
        let (header, payload) = crate::blob::decode_blob(&blob).unwrap();
        assert!(!header.has_next);
        assert_eq!(payload, b"hello world");
    }

    #[test]
    fn chained_values_retrievable() {
        let u = universe();
        u.register_domain("big.com", "Big").unwrap();
        let value: Vec<u8> = (0..2500u32).map(|i| (i % 251) as u8).collect();
        let parts = u
            .publish_data("Big", "big.com/long-article", &value)
            .unwrap();
        assert!(
            parts > 1,
            "expected chaining for 2.5 KB in a 1 KiB-blob universe"
        );

        let (c0, c1) = u.connect_data();
        let mut client = TwoServerZltp::connect(c0, c1).unwrap();
        let got = crate::blob::decode_chain(u.config().max_chain_parts, |i| {
            let p = if i == 0 {
                "big.com/long-article".to_string()
            } else {
                continuation_path("big.com/long-article", i)
            };
            client
                .private_get(&p)
                .map_err(|e| crate::blob::BlobError::Corrupt(e.to_string()))
        })
        .unwrap();
        assert_eq!(got, value);
    }

    #[test]
    fn oversized_value_rejected() {
        let u = universe();
        u.register_domain("big.com", "Big").unwrap();
        let cap = (u.config().tier.data_blob_len() - 5) * u.config().max_chain_parts;
        assert!(matches!(
            u.publish_data("Big", "big.com/too-big", &vec![0u8; cap + 1]),
            Err(UniverseError::Blob(_))
        ));
    }

    #[test]
    fn code_blobs_publish_and_serve() {
        let u = universe();
        u.register_domain("site.org", "Site").unwrap();
        u.publish_code(
            "Site",
            "site.org",
            "route { \"/\" -> data \"site.org/home\" }",
        )
        .unwrap();
        assert_eq!(u.num_code_blobs(), 1);

        let (c0, c1) = u.connect_code();
        let mut client = TwoServerZltp::connect(c0, c1).unwrap();
        let blob = client.private_get("site.org").unwrap();
        let (_, payload) = crate::blob::decode_blob(&blob).unwrap();
        assert!(std::str::from_utf8(payload).unwrap().contains("route"));
    }

    #[test]
    fn code_size_cap_enforced() {
        let u = universe();
        u.register_domain("site.org", "Site").unwrap();
        let huge = "x".repeat(u.config().code_blob_len);
        assert!(matches!(
            u.publish_code("Site", "site.org", &huge),
            Err(UniverseError::CodeTooLarge { .. })
        ));
    }

    #[test]
    fn unpublish_removes_all_parts() {
        let u = universe();
        u.register_domain("big.com", "Big").unwrap();
        let value = vec![1u8; 2500];
        u.publish_data("Big", "big.com/a", &value).unwrap();
        assert!(u.unpublish_data("Big", "big.com/a").unwrap());
        assert!(!u.unpublish_data("Big", "big.com/a").unwrap());
        assert_eq!(u.num_data_values(), 0);
        let [s0, _] = u.data_servers();
        assert!(!s0.contains("big.com/a"));
        assert!(!s0.contains("big.com/a#part1"));
    }

    #[test]
    fn export_collects_domain_content() {
        let u = universe();
        u.register_domain("a.com", "A").unwrap();
        u.register_domain("b.com", "B").unwrap();
        u.publish_code("A", "a.com", "code-a").unwrap();
        u.publish_data("A", "a.com/1", b"one").unwrap();
        u.publish_data("A", "a.com/2", b"two").unwrap();
        u.publish_data("B", "b.com/1", b"other").unwrap();

        let export = u.export_domain("a.com").unwrap();
        assert_eq!(export.owner, "A");
        assert_eq!(export.code.as_deref(), Some("code-a"));
        assert_eq!(export.values.len(), 2);
        assert!(u.export_domain("c.com").is_none());
    }

    fn state_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lightweb-universe-durable-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_universe_survives_restart_and_serves_identically() {
        let dir = state_dir("roundtrip");
        let cfg = UniverseConfig::small_test("durable");
        let big: Vec<u8> = (0..2500u32).map(|i| (i % 251) as u8).collect();
        {
            let u = Universe::open_durable(cfg.clone(), &dir, StoreConfig::small_test()).unwrap();
            assert!(u.is_durable());
            u.register_domain("site.org", "S").unwrap();
            u.publish_code("S", "site.org", "route { }").unwrap();
            u.publish_data("S", "site.org/home", b"welcome").unwrap();
            u.publish_data("S", "site.org/long", &big).unwrap();
            // Dropped without snapshot: recovery must come from the WAL.
        }
        let u2 = Universe::open_durable(cfg, &dir, StoreConfig::small_test()).unwrap();
        assert_eq!(u2.owner_of("site.org").as_deref(), Some("S"));
        assert_eq!(u2.num_data_values(), 2);
        assert_eq!(u2.num_code_blobs(), 1);

        // The recovered universe answers private-GETs identically.
        let (c0, c1) = u2.connect_data();
        let mut client = TwoServerZltp::connect(c0, c1).unwrap();
        let blob = client.private_get("site.org/home").unwrap();
        let (_, payload) = crate::blob::decode_blob(&blob).unwrap();
        assert_eq!(payload, b"welcome");
        let got = crate::blob::decode_chain(u2.config().max_chain_parts, |i| {
            let p = if i == 0 {
                "site.org/long".to_string()
            } else {
                continuation_path("site.org/long", i)
            };
            client
                .private_get(&p)
                .map_err(|e| crate::blob::BlobError::Corrupt(e.to_string()))
        })
        .unwrap();
        assert_eq!(got, big);
        // Ownership survived too: an imposter still can't publish.
        assert!(matches!(
            u2.publish_data("Mallory", "site.org/x", b"?"),
            Err(UniverseError::NotOwner { .. })
        ));
    }

    #[test]
    fn wal_replay_preserves_unpublish_tombstone() {
        let dir = state_dir("tombstone");
        let cfg = UniverseConfig::small_test("tomb");
        {
            let u = Universe::open_durable(cfg.clone(), &dir, StoreConfig::small_test()).unwrap();
            u.register_domain("gone.io", "G").unwrap();
            u.publish_data("G", "gone.io/doomed", &vec![7u8; 2500])
                .unwrap();
            u.publish_data("G", "gone.io/kept", b"still here").unwrap();
            assert!(u.unpublish_data("G", "gone.io/doomed").unwrap());
        }
        let u2 = Universe::open_durable(cfg, &dir, StoreConfig::small_test()).unwrap();
        assert_eq!(u2.num_data_values(), 1);
        // The tombstoned path and its continuations are absent from both
        // recovered ZLTP servers — replay did not resurrect them.
        for s in u2.data_servers() {
            assert!(!s.contains("gone.io/doomed"));
            assert!(!s.contains("gone.io/doomed#part1"));
            assert!(s.contains("gone.io/kept"));
        }
        let (c0, c1) = u2.connect_data();
        let mut client = TwoServerZltp::connect(c0, c1).unwrap();
        let blob = client.private_get("gone.io/doomed").unwrap();
        let (_, payload) = crate::blob::decode_blob(&blob).unwrap();
        assert!(payload.is_empty());
    }

    #[test]
    fn durable_universe_auto_snapshots_on_cadence() {
        let dir = state_dir("cadence");
        let cfg = UniverseConfig::small_test("cadence");
        let store_cfg = StoreConfig {
            snapshot_every_ops: 4,
            ..StoreConfig::small_test()
        };
        let u = Universe::open_durable(cfg.clone(), &dir, store_cfg.clone()).unwrap();
        u.register_domain("snap.io", "S").unwrap();
        for i in 0..8 {
            u.publish_data("S", &format!("snap.io/{i}"), &[i as u8; 32])
                .unwrap();
        }
        let backend = u.backend().unwrap();
        assert!(
            backend.snapshot_seq() > 0,
            "cadence of 4 must have snapshotted by op 9"
        );
        assert!(backend.ops_since_snapshot() < 4);
        drop(u);
        // Recovery from snapshot (+ maybe a short WAL suffix).
        let u2 = Universe::open_durable(cfg, &dir, store_cfg).unwrap();
        assert_eq!(u2.num_data_values(), 8);
    }

    #[test]
    fn tier_sizes_are_ordered() {
        assert!(Tier::Small.data_blob_len() < Tier::Medium.data_blob_len());
        assert!(Tier::Medium.data_blob_len() < Tier::Large.data_blob_len());
        assert_eq!(
            Tier::Medium.data_blob_len(),
            4096,
            "paper's 4 KiB operating point"
        );
    }
}
