//! A minimal JSON implementation.
//!
//! Lightweb data blobs "may contain arbitrary JSON objects" (§3.2); the
//! publisher chooses whether they hold text, style, code, or data. The
//! approved dependency set has `serde` but not `serde_json`, so this module
//! provides the small strict subset of JSON the system needs: parsing and
//! serialization of null/bool/number/string/array/object with standard
//! escapes. Numbers are `f64` (integers up to 2^53 round-trip exactly,
//! which covers everything lightweb stores in pages).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Ordered map so serialization is deterministic — blobs
    /// must be byte-stable for padding and dedup.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member access.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element access.
    pub fn at(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(i),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Build an object from pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // JSON has no NaN/Inf; write null like most encoders.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_to(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse errors, with byte offsets for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document. Trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Recursion depth limit: lightweb pages are small, and a hostile blob must
/// not be able to blow the client's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError {
                message: "invalid number".into(),
                offset: start,
            })
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos after the 4 digits;
                            // outer loop expects pos at the consumed char.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-1", "3.5", "1e3", "\"hi\""] {
            let v = parse_json(text).unwrap();
            let back = parse_json(&v.to_json()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let text = r#"{"title":"Uganda","sections":[{"h":"News","items":["a","b"]},{"h":"More","items":[]}],"count":42,"live":true,"meta":null}"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v.get("title").unwrap().as_str().unwrap(), "Uganda");
        assert_eq!(v.get("count").unwrap().as_f64().unwrap(), 42.0);
        assert_eq!(v.get("live").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("meta"), Some(&Value::Null));
        let sections = v.get("sections").unwrap().as_array().unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].get("h").unwrap().as_str().unwrap(), "News");
        // Byte-stable roundtrip through our own writer.
        assert_eq!(parse_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::String("line1\nline2\ttab \"quoted\" back\\slash \u{1}".into());
        let text = v.to_json();
        assert!(text.contains("\\n") && text.contains("\\t") && text.contains("\\u0001"));
        assert_eq!(parse_json(&text).unwrap(), v);
    }

    #[test]
    fn unicode_and_surrogates() {
        assert_eq!(parse_json(r#""é""#).unwrap(), Value::String("é".into()));
        // U+1F600 as a surrogate pair.
        assert_eq!(parse_json(r#""😀""#).unwrap(), Value::String("😀".into()));
        // Raw UTF-8 passes through.
        assert_eq!(
            parse_json("\"héllo\"").unwrap(),
            Value::String("héllo".into())
        );
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "\"unterminated",
            "01x",
            "[1],",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "--1",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_rejected() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn integers_write_without_decimal_point() {
        assert_eq!(Value::Number(42.0).to_json(), "42");
        assert_eq!(Value::Number(-7.0).to_json(), "-7");
        assert_eq!(Value::Number(2.5).to_json(), "2.5");
    }

    #[test]
    fn object_serialization_is_deterministic() {
        let a = parse_json(r#"{"z":1,"a":2}"#).unwrap();
        let b = parse_json(r#"{"a":2,"z":1}"#).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn object_builder_helper() {
        let v = Value::object([("name", "nytimes".into()), ("pages", 100i64.into())]);
        assert_eq!(v.get("name").unwrap().as_str(), Some("nytimes"));
        assert_eq!(v.get("pages").unwrap().as_f64(), Some(100.0));
        assert_eq!(v.get("absent"), None);
        assert_eq!(v.at(0), None, "object is not an array");
    }

    #[test]
    fn error_offsets_are_plausible() {
        let err = parse_json("{\"key\": tru}").unwrap_err();
        assert!(err.offset >= 8, "offset {}", err.offset);
        assert!(err.to_string().contains("byte"));
    }
}
