//! Private per-domain query statistics (paper §4).
//!
//! A CDN that charges publishers "proportionally to the number of queries
//! received for their domain" must count per-domain queries — without
//! learning which user queried which domain, which would undo ZLTP's
//! guarantee. The paper points to systems for private aggregate statistics
//! (Prio and friends); this module implements the core of that idea in the
//! two-server setting lightweb already has:
//!
//! * the client encodes its page view as a one-hot vector over the domain
//!   list and splits it into two *additive shares* (mod 2^64), one per
//!   server;
//! * each share alone is uniformly random — a single server learns
//!   nothing;
//! * each server adds the shares it receives into a running accumulator;
//! * at billing time the accumulators are combined: the sum of the two is
//!   the exact per-domain histogram.
//!
//! (Prio additionally proves shares are well-formed against malicious
//! clients; lightweb's CDN is billing *publishers*, so an inflated report
//! only overcharges the reporting user's own favorite domain. We keep the
//! honest-but-curious version and note the extension in DESIGN.md.)

use rand::RngCore;

/// Client-side report generation.
#[derive(Clone, Copy, Debug)]
pub struct StatsClient {
    num_domains: usize,
}

impl StatsClient {
    /// A client reporting over `num_domains` billable domains.
    pub fn new(num_domains: usize) -> Self {
        assert!(num_domains > 0, "need at least one domain");
        Self { num_domains }
    }

    /// Split a visit to `domain_index` into two additive shares.
    pub fn report(&self, domain_index: usize) -> (Vec<u64>, Vec<u64>) {
        assert!(domain_index < self.num_domains, "domain index out of range");
        let mut rng = rand::thread_rng();
        let mut share0 = vec![0u64; self.num_domains];
        let mut share1 = vec![0u64; self.num_domains];
        for i in 0..self.num_domains {
            let r = rng.next_u64();
            share0[i] = r;
            let value = (i == domain_index) as u64;
            share1[i] = value.wrapping_sub(r);
        }
        (share0, share1)
    }
}

/// One aggregation server's accumulator.
#[derive(Clone, Debug)]
pub struct StatsServer {
    acc: Vec<u64>,
    reports: u64,
}

impl StatsServer {
    /// An accumulator over `num_domains` domains.
    pub fn new(num_domains: usize) -> Self {
        Self {
            acc: vec![0; num_domains],
            reports: 0,
        }
    }

    /// Absorb one share. Shares of the wrong width are rejected (a
    /// malformed client must not corrupt the histogram silently).
    pub fn absorb(&mut self, share: &[u64]) -> Result<(), String> {
        if share.len() != self.acc.len() {
            return Err(format!(
                "share has {} entries, accumulator has {}",
                share.len(),
                self.acc.len()
            ));
        }
        for (a, s) in self.acc.iter_mut().zip(share.iter()) {
            *a = a.wrapping_add(*s);
        }
        self.reports += 1;
        Ok(())
    }

    /// Number of reports absorbed.
    pub fn report_count(&self) -> u64 {
        self.reports
    }

    /// The (meaningless alone) accumulator contents.
    pub fn accumulator(&self) -> &[u64] {
        &self.acc
    }
}

/// Combine the two servers' accumulators into the plaintext histogram.
pub fn combine_reports(s0: &StatsServer, s1: &StatsServer) -> Result<Vec<u64>, String> {
    if s0.acc.len() != s1.acc.len() {
        return Err("accumulator widths differ".into());
    }
    if s0.reports != s1.reports {
        return Err(format!(
            "servers saw different report counts: {} vs {}",
            s0.reports, s1.reports
        ));
    }
    Ok(s0
        .acc
        .iter()
        .zip(s1.acc.iter())
        .map(|(a, b)| a.wrapping_add(*b))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_exact() {
        let client = StatsClient::new(4);
        let mut s0 = StatsServer::new(4);
        let mut s1 = StatsServer::new(4);
        let visits = [0usize, 1, 1, 3, 1, 0, 3, 3, 3];
        for &v in &visits {
            let (a, b) = client.report(v);
            s0.absorb(&a).unwrap();
            s1.absorb(&b).unwrap();
        }
        let hist = combine_reports(&s0, &s1).unwrap();
        assert_eq!(hist, vec![2, 3, 0, 4]);
        assert_eq!(s0.report_count(), visits.len() as u64);
    }

    #[test]
    fn single_share_is_uninformative() {
        // Over many reports for the SAME domain, one server's accumulator
        // coordinates should all look like random u64 sums — in particular
        // the visited coordinate must not stand out as small.
        let client = StatsClient::new(8);
        let mut s0 = StatsServer::new(8);
        for _ in 0..100 {
            let (a, _) = client.report(2);
            s0.absorb(&a).unwrap();
        }
        let acc = s0.accumulator();
        // All coordinates random: none should be tiny (< 2^32) — that
        // would only happen with probability ~2^-32 per coordinate.
        assert!(acc.iter().all(|&x| x > u32::MAX as u64));
        // Stronger: the visited coordinate is not the max or min reliably.
        let idx_max = acc.iter().enumerate().max_by_key(|(_, v)| **v).unwrap().0;
        let idx_min = acc.iter().enumerate().min_by_key(|(_, v)| **v).unwrap().0;
        // This is probabilistic but with 8 coords the chance the target is
        // both extremes is tiny; check it is not *deterministically*
        // identifiable by being both.
        assert!(!(idx_max == 2 && idx_min == 2));
    }

    #[test]
    fn shares_sum_to_one_hot() {
        let client = StatsClient::new(5);
        let (a, b) = client.report(3);
        let sum: Vec<u64> = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| x.wrapping_add(*y))
            .collect();
        assert_eq!(sum, vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn mismatched_widths_rejected() {
        let mut s = StatsServer::new(4);
        assert!(s.absorb(&[0; 3]).is_err());
        let s2 = StatsServer::new(5);
        assert!(combine_reports(&s, &s2).is_err());
    }

    #[test]
    fn desynced_servers_detected() {
        let client = StatsClient::new(2);
        let mut s0 = StatsServer::new(2);
        let mut s1 = StatsServer::new(2);
        let (a, b) = client.report(0);
        s0.absorb(&a).unwrap();
        s1.absorb(&b).unwrap();
        let (a2, _) = client.report(1);
        s0.absorb(&a2).unwrap(); // second share lost in transit
        assert!(combine_reports(&s0, &s1).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_domain_panics() {
        StatsClient::new(3).report(3);
    }
}
