//! Access control and paywalls (paper §3.3–3.4).
//!
//! Lightweb lets a publisher restrict who can *read* content without the
//! CDN learning each user's permissions: "the CDN can simply store an
//! encryption of the data. When the client makes an account with the
//! publisher outside of lightweb, it obtains cryptographic key(s)…The
//! publisher can periodically rotate keys in order to revoke users'
//! access."
//!
//! [`AccessKeyring`] is the publisher side: a sequence of epoch keys, the
//! newest used to encrypt fresh content. [`ClientAccessPass`] is what a
//! subscriber holds: the epoch keys the publisher has granted them.
//! Revocation = rotate + re-encrypt + stop handing the new key to the
//! revoked user. The protected payload format is
//! `epoch(u32 BE) || nonce(12) || AEAD ciphertext`, with the path bound in
//! as associated data so a (malicious) CDN cannot swap ciphertexts between
//! paths undetected.

use lightweb_crypto::aead::{ChaCha20Poly1305, AEAD_NONCE_LEN, AEAD_TAG_LEN};

/// Overhead added by protection: epoch + nonce + tag.
pub const ACCESS_OVERHEAD: usize = 4 + AEAD_NONCE_LEN + AEAD_TAG_LEN;

/// Errors from the access-control layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessError {
    /// The pass has no key for the ciphertext's epoch — the subscription
    /// lapsed (or never existed).
    NoKeyForEpoch(u32),
    /// The ciphertext failed to authenticate (corruption or path swap).
    BadCiphertext,
    /// The protected payload is structurally malformed.
    Malformed,
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::NoKeyForEpoch(e) => write!(f, "no access key for epoch {e}"),
            AccessError::BadCiphertext => write!(f, "protected blob failed to authenticate"),
            AccessError::Malformed => write!(f, "malformed protected blob"),
        }
    }
}

impl std::error::Error for AccessError {}

/// Publisher-side key management: one key per epoch.
pub struct AccessKeyring {
    keys: Vec<[u8; 32]>,
}

impl AccessKeyring {
    /// Start a keyring at epoch 0 with a fresh key.
    pub fn new() -> Self {
        Self {
            keys: vec![lightweb_crypto::random_key()],
        }
    }

    /// Current epoch number.
    pub fn current_epoch(&self) -> u32 {
        (self.keys.len() - 1) as u32
    }

    /// Rotate to a new epoch (revocation step one; step two is
    /// re-encrypting and re-publishing the protected content).
    pub fn rotate(&mut self) -> u32 {
        self.keys.push(lightweb_crypto::random_key());
        self.current_epoch()
    }

    /// Encrypt `plaintext` for `path` under the current epoch.
    pub fn protect(&self, path: &str, plaintext: &[u8]) -> Vec<u8> {
        let epoch = self.current_epoch();
        let aead = ChaCha20Poly1305::new(&self.keys[epoch as usize]);
        let mut nonce = [0u8; AEAD_NONCE_LEN];
        lightweb_crypto::fill_random(&mut nonce);
        let ct = aead.seal(&nonce, path.as_bytes(), plaintext);
        let mut out = Vec::with_capacity(4 + AEAD_NONCE_LEN + ct.len());
        out.extend_from_slice(&epoch.to_be_bytes());
        out.extend_from_slice(&nonce);
        out.extend_from_slice(&ct);
        out
    }

    /// Issue a pass granting epochs `from..=current` (a subscription that
    /// started at `from`).
    pub fn issue_pass(&self, from_epoch: u32) -> ClientAccessPass {
        let from = from_epoch as usize;
        ClientAccessPass {
            first_epoch: from_epoch,
            keys: self.keys[from.min(self.keys.len())..].to_vec(),
        }
    }
}

impl Default for AccessKeyring {
    fn default() -> Self {
        Self::new()
    }
}

/// The keys a subscriber holds.
#[derive(Clone)]
pub struct ClientAccessPass {
    first_epoch: u32,
    keys: Vec<[u8; 32]>,
}

impl ClientAccessPass {
    /// Decrypt a protected payload fetched from `path`.
    pub fn open(&self, path: &str, protected: &[u8]) -> Result<Vec<u8>, AccessError> {
        if protected.len() < ACCESS_OVERHEAD {
            return Err(AccessError::Malformed);
        }
        let epoch = u32::from_be_bytes(protected[..4].try_into().unwrap());
        let idx = epoch
            .checked_sub(self.first_epoch)
            .map(|i| i as usize)
            .filter(|&i| i < self.keys.len())
            .ok_or(AccessError::NoKeyForEpoch(epoch))?;
        let nonce: [u8; AEAD_NONCE_LEN] = protected[4..4 + AEAD_NONCE_LEN].try_into().unwrap();
        ChaCha20Poly1305::new(&self.keys[idx])
            .open(&nonce, path.as_bytes(), &protected[4 + AEAD_NONCE_LEN..])
            .map_err(|_| AccessError::BadCiphertext)
    }

    /// Extend the pass with newer keys fetched from the publisher ("clients
    /// can query the publisher periodically for updated keys").
    pub fn extend_from(&mut self, ring: &AccessKeyring) {
        let have = self.first_epoch as usize + self.keys.len();
        if have <= ring.keys.len() {
            self.keys.extend_from_slice(&ring.keys[have..]);
        }
    }

    /// Epochs this pass can decrypt.
    pub fn epoch_range(&self) -> std::ops::Range<u32> {
        self.first_epoch..self.first_epoch + self.keys.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscriber_reads_protected_content() {
        let ring = AccessKeyring::new();
        let pass = ring.issue_pass(0);
        let protected = ring.protect("nyt.com/premium/article", b"the scoop");
        assert_eq!(
            pass.open("nyt.com/premium/article", &protected).unwrap(),
            b"the scoop"
        );
    }

    #[test]
    fn non_subscriber_cannot_read() {
        let ring_a = AccessKeyring::new();
        let ring_b = AccessKeyring::new();
        let protected = ring_a.protect("p", b"secret");
        let wrong_pass = ring_b.issue_pass(0);
        assert_eq!(
            wrong_pass.open("p", &protected),
            Err(AccessError::BadCiphertext)
        );
    }

    #[test]
    fn rotation_revokes_stale_passes() {
        let mut ring = AccessKeyring::new();
        let old_pass = ring.issue_pass(0);
        ring.rotate();
        let fresh = ring.protect("p", b"new content");
        // Old pass lacks the epoch-1 key.
        assert_eq!(
            old_pass.open("p", &fresh),
            Err(AccessError::NoKeyForEpoch(1))
        );
        // A renewed subscriber can read.
        let new_pass = ring.issue_pass(0);
        assert_eq!(new_pass.open("p", &fresh).unwrap(), b"new content");
    }

    #[test]
    fn pass_extension_restores_access() {
        let mut ring = AccessKeyring::new();
        let mut pass = ring.issue_pass(0);
        ring.rotate();
        let fresh = ring.protect("p", b"v2");
        assert!(pass.open("p", &fresh).is_err());
        pass.extend_from(&ring);
        assert_eq!(pass.open("p", &fresh).unwrap(), b"v2");
        assert_eq!(pass.epoch_range(), 0..2);
    }

    #[test]
    fn late_subscriber_cannot_read_old_epochs() {
        let mut ring = AccessKeyring::new();
        let old = ring.protect("p", b"archive");
        ring.rotate();
        let late_pass = ring.issue_pass(1);
        assert_eq!(
            late_pass.open("p", &old),
            Err(AccessError::NoKeyForEpoch(0))
        );
    }

    #[test]
    fn path_binding_prevents_ciphertext_swaps() {
        let ring = AccessKeyring::new();
        let pass = ring.issue_pass(0);
        let protected = ring.protect("site/cheap-article", b"cheap");
        // A malicious CDN serving the cheap ciphertext at the premium path
        // is detected.
        assert_eq!(
            pass.open("site/premium-article", &protected),
            Err(AccessError::BadCiphertext)
        );
    }

    #[test]
    fn malformed_payloads_rejected() {
        let ring = AccessKeyring::new();
        let pass = ring.issue_pass(0);
        assert_eq!(pass.open("p", &[0u8; 3]), Err(AccessError::Malformed));
        let mut protected = ring.protect("p", b"x");
        protected.truncate(protected.len() - 1);
        assert_eq!(pass.open("p", &protected), Err(AccessError::BadCiphertext));
    }

    #[test]
    fn overhead_constant_is_accurate() {
        let ring = AccessKeyring::new();
        let protected = ring.protect("p", b"12345");
        assert_eq!(protected.len(), 5 + ACCESS_OVERHEAD);
    }
}
