//! Multi-universe peering (paper §3.5).
//!
//! "If a publisher uploads content to one CDN, the CDN would push the
//! content to all of its peers. To make this possible, CDNs would have to
//! agree on the assignment of lightweb domain names to owners."
//!
//! [`PeerGroup`] models a set of peered universes: publishing through the
//! group fans out to every member, and [`push_domain`] replays an already-
//! published domain from one universe to another — refusing when the
//! destination has the domain registered to a *different* owner, the
//! consistency rule the paper derives from today's domain-name system.

use crate::universe::{Universe, UniverseError};
use std::sync::Arc;

/// Push everything under `domain` from `src` to `dst`.
///
/// Registers the domain at `dst` under the same owner (erroring if `dst`
/// has it under a different owner), then republishes code and data.
/// Returns the number of data values pushed.
pub fn push_domain(src: &Universe, dst: &Universe, domain: &str) -> Result<usize, UniverseError> {
    let export = src.export_domain(domain).ok_or_else(|| {
        UniverseError::InvalidDomain(format!("{domain} not present in {}", src.id()))
    })?;
    dst.register_domain(&export.domain, &export.owner)?;
    if let Some(code) = &export.code {
        dst.publish_code(&export.owner, &export.domain, code)?;
    }
    let mut pushed = 0;
    for (path, value) in &export.values {
        dst.publish_data(&export.owner, path, value)?;
        pushed += 1;
    }
    Ok(pushed)
}

/// A set of peered universes sharing domain-ownership assignments.
pub struct PeerGroup {
    members: Vec<Arc<Universe>>,
}

impl PeerGroup {
    /// Form a peer group.
    pub fn new(members: Vec<Arc<Universe>>) -> Self {
        Self { members }
    }

    /// The member universes.
    pub fn members(&self) -> &[Arc<Universe>] {
        &self.members
    }

    /// Register a domain across every member (the "agree on assignment"
    /// step). Fails if any member has a conflicting owner; members
    /// registered earlier in the same call keep the registration, matching
    /// the paper's observation that peering piggybacks on a single global
    /// registry.
    pub fn register_domain(&self, domain: &str, publisher: &str) -> Result<(), UniverseError> {
        for u in &self.members {
            u.register_domain(domain, publisher)?;
        }
        Ok(())
    }

    /// Publish a data value to every member.
    pub fn publish_data(
        &self,
        publisher: &str,
        path: &str,
        value: &[u8],
    ) -> Result<(), UniverseError> {
        for u in &self.members {
            u.publish_data(publisher, path, value)?;
        }
        Ok(())
    }

    /// Publish code to every member.
    pub fn publish_code(
        &self,
        publisher: &str,
        domain: &str,
        code: &str,
    ) -> Result<(), UniverseError> {
        for u in &self.members {
            u.publish_code(publisher, domain, code)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseConfig;
    use lightweb_core::TwoServerZltp;

    fn two_universes() -> (Arc<Universe>, Arc<Universe>) {
        (
            Arc::new(Universe::new(UniverseConfig::small_test("akamai")).unwrap()),
            Arc::new(Universe::new(UniverseConfig::small_test("cloudflare")).unwrap()),
        )
    }

    #[test]
    fn push_replicates_domain_content() {
        let (a, b) = two_universes();
        a.register_domain("news.com", "News").unwrap();
        a.publish_code("News", "news.com", "code").unwrap();
        a.publish_data("News", "news.com/front", b"front page")
            .unwrap();
        a.publish_data("News", "news.com/sports", b"sports page")
            .unwrap();

        let pushed = push_domain(&a, &b, "news.com").unwrap();
        assert_eq!(pushed, 2);
        assert_eq!(b.owner_of("news.com").as_deref(), Some("News"));
        assert_eq!(b.num_data_values(), 2);

        // Content is servable from the peer.
        let (c0, c1) = b.connect_data();
        let mut client = TwoServerZltp::connect(c0, c1).unwrap();
        let blob = client.private_get("news.com/front").unwrap();
        let (_, payload) = crate::blob::decode_blob(&blob).unwrap();
        assert_eq!(payload, b"front page");
    }

    #[test]
    fn push_refuses_conflicting_ownership() {
        let (a, b) = two_universes();
        a.register_domain("news.com", "News").unwrap();
        a.publish_data("News", "news.com/x", b"x").unwrap();
        // The destination has the domain under a different owner.
        b.register_domain("news.com", "Squatter").unwrap();
        assert!(matches!(
            push_domain(&a, &b, "news.com"),
            Err(UniverseError::AlreadyRegistered { .. })
        ));
    }

    #[test]
    fn push_of_unknown_domain_fails() {
        let (a, b) = two_universes();
        assert!(matches!(
            push_domain(&a, &b, "ghost.com"),
            Err(UniverseError::InvalidDomain(_))
        ));
    }

    #[test]
    fn peer_group_fans_out_publishes() {
        let (a, b) = two_universes();
        let group = PeerGroup::new(vec![a.clone(), b.clone()]);
        group.register_domain("wiki.org", "Wiki").unwrap();
        group.publish_code("Wiki", "wiki.org", "wiki-code").unwrap();
        group
            .publish_data("Wiki", "wiki.org/Uganda", b"article")
            .unwrap();
        assert_eq!(a.num_data_values(), 1);
        assert_eq!(b.num_data_values(), 1);
        assert_eq!(a.num_code_blobs(), 1);
        assert_eq!(b.num_code_blobs(), 1);
        assert_eq!(group.members().len(), 2);
    }

    #[test]
    fn peer_group_registration_conflict_surfaces() {
        let (a, b) = two_universes();
        b.register_domain("wiki.org", "Other").unwrap();
        let group = PeerGroup::new(vec![a.clone(), b]);
        assert!(group.register_domain("wiki.org", "Wiki").is_err());
        // First member may have registered before the failure — the paper's
        // global-registry assumption is exactly what avoids this in
        // practice.
        assert_eq!(a.owner_of("wiki.org").as_deref(), Some("Wiki"));
    }
}
