#![warn(missing_docs)]

//! # lightweb-universe
//!
//! The lightweb *content universe* (paper §3): the publisher-facing half of
//! the system, layered on a ZLTP deployment.
//!
//! A universe is a collection of millions of fixed-size lightweb pages
//! hosted by one CDN in one administrative domain. Publishers produce:
//!
//! * one **code blob** per domain — routing and rendering logic the client
//!   caches aggressively (served from a *separate* ZLTP universe with its
//!   own, larger fixed blob size, as §3.2 suggests), and
//! * many **data blobs** — small JSON objects, all padded to the
//!   universe-wide fixed size (e.g. 4 KiB).
//!
//! This crate implements everything §3 describes around those blobs:
//!
//! * [`json`] — a from-scratch minimal JSON value/parser/writer (data
//!   blobs "contain arbitrary JSON objects", §3.2; `serde_json` is not in
//!   the approved dependency set, so we built one).
//! * [`blob`] — the fixed-size blob encoding: length-prefixed payloads,
//!   zero padding, and *chaining* for oversized values — the paper's
//!   "values longer than this can be broken up and retrieved separately
//!   (i.e. the user can click a 'next' link)" (§5).
//! * [`universe`] — the universe itself: domain-prefix ownership (§3.1:
//!   "a single publisher controls all of the content beneath a particular
//!   top-level path component"), publish/update flows to the two-server
//!   deployment, and the small/medium/large size tiers of §3.5.
//! * [`access`] — access control and paywalls (§3.3–3.4): the CDN stores
//!   only ciphertexts; publishers hand epoch keys to authorized clients
//!   and rotate them to revoke.
//! * [`peering`] — multi-universe peering (§3.5): pushing published
//!   content to peer universes that agree on domain ownership.
//! * [`stats`] — privately counting per-domain queries for billing (§4)
//!   with two-server additive secret sharing, Prio-style.

pub mod access;
pub mod blob;
pub mod json;
pub mod peering;
pub mod stats;
pub mod tiered;
pub mod universe;

pub use access::{AccessKeyring, ClientAccessPass};
pub use blob::{decode_blob, decode_chain, encode_blob, encode_chain, BlobError, BlobHeader};
pub use json::{parse_json, Value};
pub use stats::{combine_reports, StatsClient, StatsServer};
pub use tiered::TieredCdn;
pub use universe::{DomainExport, PathError, Tier, Universe, UniverseConfig, UniverseError};

#[cfg(test)]
mod proptests {
    use super::json::{parse_json, Value};
    use proptest::prelude::*;

    /// Strategy generating arbitrary JSON values (bounded depth).
    fn value_strategy() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            // Finite, integer-friendly numbers (JSON has no NaN/Inf).
            (-1e9f64..1e9).prop_map(|n| Value::Number((n * 100.0).round() / 100.0)),
            "[a-zA-Z0-9 _\\-\\.\"\\\\/\n\t]{0,24}".prop_map(Value::String),
        ];
        leaf.prop_recursive(3, 24, 6, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
                prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Value::Object),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Any generated JSON value survives serialize → parse.
        #[test]
        fn json_roundtrip(v in value_strategy()) {
            let text = v.to_json();
            let back = parse_json(&text).unwrap();
            prop_assert_eq!(back, v);
        }

        /// The JSON parser is total over arbitrary input strings.
        #[test]
        fn json_parser_never_panics(s in "\\PC{0,128}") {
            let _ = parse_json(&s);
        }

        /// Blob chains round-trip for any payload that fits the budget.
        #[test]
        fn blob_chain_roundtrip(
            payload in prop::collection::vec(any::<u8>(), 0..600),
            blob_len in 16usize..128,
        ) {
            let max_parts = 16;
            match super::blob::encode_chain(&payload, blob_len, max_parts) {
                Ok(blobs) => {
                    prop_assert!(blobs.iter().all(|b| b.len() == blob_len));
                    let got = super::blob::decode_chain(max_parts, |i| {
                        blobs
                            .get(i)
                            .cloned()
                            .ok_or(super::blob::BlobError::Corrupt("missing".into()))
                    })
                    .unwrap();
                    prop_assert_eq!(got, payload);
                }
                Err(super::blob::BlobError::TooLarge { .. }) => {
                    prop_assert!(payload.len() > (blob_len - 5) * max_parts);
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
            }
        }

        /// Blob decoding is total over arbitrary bytes.
        #[test]
        fn blob_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = super::blob::decode_blob(&bytes);
        }

        /// Access-control opening is total over arbitrary ciphertexts.
        #[test]
        fn access_open_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
            let ring = super::access::AccessKeyring::new();
            let pass = ring.issue_pass(0);
            let _ = pass.open("p", &bytes);
        }
    }
}
