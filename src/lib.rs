#![warn(missing_docs)]

//! # lightweb
//!
//! Facade crate for the lightweb reproduction: re-exports the public API of
//! every subsystem crate so that downstream users (and the examples and
//! integration tests in this repository) can depend on a single crate.
//!
//! See the workspace `README.md` for a tour and `DESIGN.md` for the
//! paper-to-module map.
//!
//! ## One private page load, end to end
//!
//! ```
//! use lightweb::browser::LightwebBrowser;
//! use lightweb::universe::{Universe, UniverseConfig};
//!
//! // The CDN stands up a universe; a publisher uploads a page.
//! let universe = Universe::new(UniverseConfig::small_test("doc")).unwrap();
//! universe.register_domain("example.com", "Example").unwrap();
//! universe
//!     .publish_code(
//!         "Example",
//!         "example.com",
//!         "route \"/\" {\n fetch \"example.com/home\"\n render \"{data.0}\"\n }",
//!     )
//!     .unwrap();
//! universe.publish_data("Example", "example.com/home", b"hello, private web").unwrap();
//!
//! // A user browses. Neither the network nor the CDN learns which page.
//! let mut browser = LightwebBrowser::connect(
//!     universe.connect_code(),
//!     universe.connect_data(),
//!     universe.config().fetches_per_page,
//!     universe.config().max_chain_parts,
//! )
//! .unwrap();
//! let page = browser.browse("example.com/").unwrap();
//! assert_eq!(page.body, "hello, private web");
//! // Every page view issues the same fixed number of data GETs:
//! assert_eq!(page.real_fetches + page.dummy_fetches, 5);
//! ```

pub use lightweb_browser as browser;
pub use lightweb_core as zltp;
pub use lightweb_cost as cost;
pub use lightweb_crypto as crypto;
pub use lightweb_dpf as dpf;
pub use lightweb_engine as engine;
pub use lightweb_oram as oram;
pub use lightweb_pir as pir;
pub use lightweb_reactor as reactor;
pub use lightweb_store as store;
pub use lightweb_telemetry as telemetry;
pub use lightweb_universe as universe;
pub use lightweb_workload as workload;
