//! Full-stack durability integration: a universe journaled by
//! `lightweb-store` is dropped (no graceful shutdown), reopened from its
//! state directory, and must serve the same pages through the real
//! browser stack — code fetch, LWScript render, chained data blobs —
//! as if the restart never happened. Also covers torn-tail recovery
//! through the facade and browser local-storage persistence alongside
//! the universe journal.

use lightweb::browser::{LightwebBrowser, LocalStorage};
use lightweb::store::StoreConfig;
use lightweb::universe::{Universe, UniverseConfig, UniverseError};

fn state_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lightweb-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn browser_for(u: &Universe) -> LightwebBrowser<lightweb::zltp::MemDuplex> {
    LightwebBrowser::connect(
        u.connect_code(),
        u.connect_data(),
        u.config().fetches_per_page,
        u.config().max_chain_parts,
    )
    .unwrap()
}

fn publish_site(u: &Universe) {
    u.register_domain("durable.org", "D").unwrap();
    u.publish_code(
        "D",
        "durable.org",
        r#"
        route "/" {
            fetch "durable.org/home"
            title "Durable"
            render "{data.0}"
        }
        route "/long" {
            fetch "durable.org/book"
            render "{data.0}"
        }
        default {
            render "404"
        }
        "#,
    )
    .unwrap();
    u.publish_data("D", "durable.org/home", b"still here")
        .unwrap();
    u.publish_data("D", "durable.org/book", "chapter ".repeat(300).as_bytes())
        .unwrap();
}

#[test]
fn universe_restart_is_invisible_to_the_browser() {
    let dir = state_dir("browser");
    let cfg = UniverseConfig::small_test("durable");
    {
        let u = Universe::open_durable(cfg.clone(), &dir, StoreConfig::small_test()).unwrap();
        publish_site(&u);
        let mut b = browser_for(&u);
        assert_eq!(b.browse("durable.org/").unwrap().body, "still here");
        // Dropped without snapshot: recovery must replay the WAL.
    }
    let u = Universe::open_durable(cfg, &dir, StoreConfig::small_test()).unwrap();
    let mut b = browser_for(&u);
    let page = b.browse("durable.org/").unwrap();
    assert_eq!(page.body, "still here");
    assert_eq!(page.title, "Durable");
    // The chained value survives restart byte-for-byte (2400 bytes spans
    // multiple 1 KiB blobs in the small tier).
    assert_eq!(
        b.browse("durable.org/long").unwrap().body,
        "chapter ".repeat(300)
    );
    assert_eq!(b.browse("durable.org/missing").unwrap().body, "404");
    // Ownership is part of the recovered state.
    assert!(matches!(
        u.publish_data("Mallory", "durable.org/x", b"?"),
        Err(UniverseError::NotOwner { .. })
    ));
}

#[test]
fn unpublish_then_restart_keeps_the_tombstone() {
    let dir = state_dir("tombstone");
    let cfg = UniverseConfig::small_test("tomb");
    {
        let u = Universe::open_durable(cfg.clone(), &dir, StoreConfig::small_test()).unwrap();
        publish_site(&u);
        assert!(u.unpublish_data("D", "durable.org/book").unwrap());
        // Snapshot + compaction, then one more WAL-only mutation: recovery
        // must stitch snapshot and WAL suffix together.
        u.snapshot_now().unwrap();
        u.publish_data("D", "durable.org/new", b"post-snapshot")
            .unwrap();
    }
    let u = Universe::open_durable(cfg, &dir, StoreConfig::small_test()).unwrap();
    assert_eq!(u.num_data_values(), 2, "home + new, book tombstoned");
    for s in u.data_servers() {
        assert!(!s.contains("durable.org/book"));
        assert!(s.contains("durable.org/home"));
        assert!(s.contains("durable.org/new"));
    }
}

#[test]
fn torn_wal_tail_recovers_to_last_valid_record() {
    let dir = state_dir("torn");
    let cfg = UniverseConfig::small_test("torn");
    {
        let u = Universe::open_durable(cfg.clone(), &dir, StoreConfig::small_test()).unwrap();
        publish_site(&u);
    }
    // Tear the WAL mid-record, as a crash during a write would.
    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal-"))
        .expect("a WAL file");
    let raw = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &raw[..raw.len() - 7]).unwrap();

    let u = Universe::open_durable(cfg, &dir, StoreConfig::small_test()).unwrap();
    // The torn final record (the chained book) is gone; everything before
    // it survives and still serves.
    assert_eq!(u.num_data_values(), 1);
    assert_eq!(u.owner_of("durable.org").as_deref(), Some("D"));
    let mut b = browser_for(&u);
    assert_eq!(b.browse("durable.org/").unwrap().body, "still here");
}

#[test]
fn browser_storage_persists_beside_the_universe_journal() {
    let dir = state_dir("storage");
    let cfg = UniverseConfig::small_test("store");
    let storage_dir = dir.join("browser-storage");
    {
        let u = Universe::open_durable(cfg.clone(), &dir, StoreConfig::small_test()).unwrap();
        publish_site(&u);
        let mut ls = LocalStorage::new();
        ls.set("durable.org", "theme", "dark");
        ls.set("other.net", "zip", "94110");
        ls.save_to(&storage_dir).unwrap();
    }
    // Universe and browser state restart independently from the same root.
    let u = Universe::open_durable(cfg, &dir, StoreConfig::small_test()).unwrap();
    let ls = LocalStorage::load_from(&storage_dir).unwrap();
    assert_eq!(u.num_data_values(), 2);
    assert_eq!(ls.get("durable.org", "theme"), Some("dark"));
    assert_eq!(ls.get("other.net", "zip"), Some("94110"));
    // Domain separation holds for the reloaded storage too.
    assert!(!ls.domain_view("durable.org").contains_key("zip"));
}
