//! Failure injection: a production protocol engine must fail loudly and
//! cleanly, never hang or serve garbage. These tests feed the ZLTP server
//! malformed frames, wrong-mode requests, truncated streams, and hostile
//! payloads.

use lightweb::zltp::wire::Message;
use lightweb::zltp::{
    FramedConn, InProcServer, Mode, ModeSet, ServerConfig, TwoServerZltp, ZltpError, ZltpServer,
    ZltpSession, PROTOCOL_VERSION,
};
use std::io::Write;

fn test_server(modes: &[Mode]) -> InProcServer {
    let mut cfg = ServerConfig::small("failures", 0);
    cfg.blob_len = 64;
    cfg.modes = ModeSet::new(modes.iter().copied());
    let server = ZltpServer::new(cfg).unwrap();
    server.publish("a.com/x", &[1u8; 64]).unwrap();
    InProcServer::new(server)
}

#[test]
fn garbage_get_payload_yields_protocol_error_not_hang() {
    let srv = test_server(&[Mode::TwoServerPir]);
    let modes = ModeSet::new([Mode::TwoServerPir]);
    let mut session = ZltpSession::connect(srv.connect(), &modes).unwrap();
    // Not a DPF key at all.
    let err = session.get_raw(vec![0xFF; 100]).unwrap_err();
    assert!(matches!(err, ZltpError::ServerError { .. }), "{err}");
    // The session is still usable afterwards.
    let params = session.params();
    let (k0, _) = lightweb::dpf::gen(&params, 0);
    assert!(session.get_raw(k0.to_bytes().to_vec()).is_ok());
}

#[test]
fn wrong_domain_dpf_key_rejected() {
    let srv = test_server(&[Mode::TwoServerPir]);
    let modes = ModeSet::new([Mode::TwoServerPir]);
    let mut session = ZltpSession::connect(srv.connect(), &modes).unwrap();
    // Valid key, wrong parameters (domain 2^8 vs the server's 2^14).
    let params = lightweb::dpf::DpfParams::new(8, 2).unwrap();
    let (k0, _) = lightweb::dpf::gen(&params, 0);
    let err = session.get_raw(k0.to_bytes().to_vec()).unwrap_err();
    assert!(matches!(err, ZltpError::ServerError { .. }));
}

#[test]
fn version_mismatch_rejected_with_error_frame() {
    let srv = test_server(&[Mode::TwoServerPir]);
    let mut conn = FramedConn::new(srv.connect());
    conn.send(&Message::ClientHello {
        version: 99,
        modes: vec![1],
    })
    .unwrap();
    match conn.recv().unwrap() {
        Message::Error { code, .. } => assert_eq!(code, 1),
        other => panic!("expected Error, got {}", other.name()),
    }
}

#[test]
fn get_before_hello_is_a_state_error() {
    let srv = test_server(&[Mode::TwoServerPir]);
    let mut conn = FramedConn::new(srv.connect());
    conn.send(&Message::Get {
        request_id: 1,
        payload: vec![],
    })
    .unwrap();
    match conn.recv().unwrap() {
        Message::Error { code, message } => {
            assert_eq!(code, 5);
            assert!(message.contains("ClientHello"), "{message}");
        }
        other => panic!("expected Error, got {}", other.name()),
    }
}

#[test]
fn lwe_setup_outside_lwe_mode_is_rejected_in_session() {
    let srv = test_server(&[Mode::TwoServerPir]);
    let mut conn = FramedConn::new(srv.connect());
    conn.send(&Message::ClientHello {
        version: PROTOCOL_VERSION,
        modes: vec![1],
    })
    .unwrap();
    assert!(matches!(conn.recv().unwrap(), Message::ServerHello { .. }));
    conn.send(&Message::LweSetupRequest).unwrap();
    match conn.recv().unwrap() {
        Message::Error { code, .. } => assert_eq!(code, 5),
        other => panic!("expected Error, got {}", other.name()),
    }
}

#[test]
fn raw_byte_garbage_drops_the_connection_cleanly() {
    let srv = test_server(&[Mode::TwoServerPir]);
    let mut stream = srv.connect();
    // A frame header claiming 1 GiB.
    stream.write_all(&[0x40, 0x00, 0x00, 0x01, 0x03]).unwrap();
    // Then a valid client reconnects fine: the server did not wedge.
    let modes = ModeSet::new([Mode::TwoServerPir]);
    let session = ZltpSession::connect(srv.connect(), &modes).unwrap();
    assert_eq!(session.universe_id(), "failures");
}

#[test]
fn client_disconnect_mid_session_leaves_server_usable() {
    let srv = test_server(&[Mode::TwoServerPir]);
    for _ in 0..5 {
        let modes = ModeSet::new([Mode::TwoServerPir]);
        let session = ZltpSession::connect(srv.connect(), &modes).unwrap();
        drop(session); // vanish without Close
    }
    let modes = ModeSet::new([Mode::TwoServerPir]);
    let mut session = ZltpSession::connect(srv.connect(), &modes).unwrap();
    let (k0, _) = lightweb::dpf::gen(&session.params(), 0);
    assert!(session.get_raw(k0.to_bytes().to_vec()).is_ok());
}

#[test]
fn tampered_enclave_query_rejected() {
    let srv = test_server(&[Mode::Enclave]);
    let mut conn = FramedConn::new(srv.connect());
    conn.send(&Message::ClientHello {
        version: PROTOCOL_VERSION,
        modes: vec![3],
    })
    .unwrap();
    assert!(matches!(conn.recv().unwrap(), Message::ServerHello { .. }));
    // A sealed payload under the wrong key (random bytes).
    conn.send(&Message::Get {
        request_id: 1,
        payload: vec![0xAB; 60],
    })
    .unwrap();
    match conn.recv().unwrap() {
        Message::Error { code, .. } => assert_eq!(code, 3),
        other => panic!("expected Error, got {}", other.name()),
    }
}

#[test]
fn mismatched_blob_sizes_between_pair_detected() {
    let mut c0 = ServerConfig::small("pair", 0);
    c0.blob_len = 64;
    let mut c1 = ServerConfig::small("pair", 1);
    c1.blob_len = 128;
    let s0 = InProcServer::new(ZltpServer::new(c0).unwrap());
    let s1 = InProcServer::new(ZltpServer::new(c1).unwrap());
    let Err(err) = TwoServerZltp::connect(s0.connect(), s1.connect()) else {
        panic!("mismatched pair accepted");
    };
    assert!(matches!(err, ZltpError::ServerPairMismatch(_)));
}

#[test]
fn server_shutdown_ends_sessions() {
    let srv = test_server(&[Mode::TwoServerPir]);
    let modes = ModeSet::new([Mode::TwoServerPir]);
    let mut session = ZltpSession::connect(srv.connect(), &modes).unwrap();
    srv.server().shutdown();
    // The next request either gets a Close/error or an I/O failure — never
    // a hang (bounded by the test harness timeout) and never a bogus blob.
    let (k0, _) = lightweb::dpf::gen(&session.params(), 0);
    if let Ok(blob) = session.get_raw(k0.to_bytes().to_vec()) {
        assert_eq!(blob.len(), 64, "a well-formed final answer is acceptable")
    }
}
