//! Scale-out and privacy-property integration tests: the §5.2 sharded
//! architecture at moderate scale, and the end-to-end traffic-shape
//! property that defeats the §1 fingerprinting attack.

use lightweb::dpf::{gen, DpfParams};
use lightweb::pir::{PirServer, TwoServerClient};
use lightweb::workload::fingerprint::{
    simulate_lightweb_flow, simulate_proxy_flow, synthetic_site, FlowObservation, NearestCentroid,
};
use lightweb::workload::CorpusSpec;
use lightweb::zltp::deployment::ShardedDeployment;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sharded_deployment_serves_a_synthetic_c4_shard() {
    // A scaled-down C4: 2^12 pages through the keyword map into a 2^14
    // domain, sharded 8 ways, retrieved through the full two-server
    // protocol with front-end splitting.
    let params = DpfParams::with_default_termination(14).unwrap();
    let pages = CorpusSpec::c4().generate(1 << 12, 42);
    let record_len = 512usize;
    let map = lightweb::pir::KeywordMap::new(&[7u8; 16], 14);

    let mut entries = Vec::new();
    let mut used = std::collections::HashSet::new();
    let mut stored = Vec::new();
    for page in &pages {
        let slot = map.slot(page.path.as_bytes());
        if !used.insert(slot) {
            continue; // keyword collision: the publisher would rename (§5.1)
        }
        let mut rec = vec![0u8; record_len];
        let n = page.body.len().min(record_len);
        rec[..n].copy_from_slice(&page.body[..n]);
        entries.push((slot, rec.clone()));
        stored.push((page.path.clone(), slot, rec));
    }
    // At 25% load, roughly 1/8 of pages collide; most survive.
    assert!(stored.len() > 3000, "only {} pages stored", stored.len());

    let dep0 = ShardedDeployment::from_entries(params, 3, record_len, entries.clone()).unwrap();
    let dep1 = ShardedDeployment::from_entries(params, 3, record_len, entries).unwrap();
    assert_eq!(dep0.shard_count(), 8);

    let client = TwoServerClient::new(params, record_len);
    for (path, slot, rec) in stored.iter().step_by(500) {
        let q = client.query_slot(*slot);
        let (a0, _) = dep0.answer(&q.key0).unwrap();
        let a1 = dep1.answer_parallel(&q.key1).unwrap();
        assert_eq!(
            &TwoServerClient::combine(&a0, &a1).unwrap(),
            rec,
            "path {path}"
        );
    }
}

#[test]
fn sharding_degree_does_not_change_answers() {
    let params = DpfParams::with_default_termination(12).unwrap();
    let entries: Vec<(u64, Vec<u8>)> = (0..512u64)
        .map(|i| (i * 7 % (1 << 12), vec![i as u8; 64]))
        .collect::<std::collections::BTreeMap<_, _>>()
        .into_iter()
        .collect();
    let mono = PirServer::from_entries(params, 64, entries.clone()).unwrap();
    let (key, _) = gen(&params, 333);
    let reference = mono.answer(&key).unwrap();
    for prefix in 1..=4u32 {
        let dep = ShardedDeployment::from_entries(params, prefix, 64, entries.clone()).unwrap();
        assert_eq!(dep.answer(&key).unwrap().0, reference, "prefix {prefix}");
    }
}

#[test]
fn fingerprinting_attack_succeeds_on_proxy_fails_on_lightweb() {
    let mut rng = StdRng::seed_from_u64(1234);
    let site = synthetic_site(30, &mut rng);
    let chance = 1.0 / site.len() as f64;

    // Proxy channel: train and test on per-page flows.
    let train: Vec<(usize, FlowObservation)> = site
        .iter()
        .enumerate()
        .flat_map(|(l, objs)| {
            (0..6)
                .map(|_| (l, simulate_proxy_flow(objs, &mut rng)))
                .collect::<Vec<_>>()
        })
        .collect();
    let test: Vec<(usize, FlowObservation)> = site
        .iter()
        .enumerate()
        .map(|(l, objs)| (l, simulate_proxy_flow(objs, &mut rng)))
        .collect();
    let clf = NearestCentroid::train(&train);
    let proxy_acc = clf.accuracy(&test);
    assert!(
        proxy_acc > 10.0 * chance,
        "proxy attack should crush chance: {proxy_acc}"
    );

    // Lightweb channel: identical flows for every page → at most chance.
    let lw_train: Vec<(usize, FlowObservation)> = (0..site.len())
        .flat_map(|l| (0..6).map(move |_| (l, simulate_lightweb_flow(5, 1024))))
        .collect();
    let lw_test: Vec<(usize, FlowObservation)> = (0..site.len())
        .map(|l| (l, simulate_lightweb_flow(5, 1024)))
        .collect();
    let lw_clf = NearestCentroid::train(&lw_train);
    let lw_acc = lw_clf.accuracy(&lw_test);
    assert!(
        lw_acc <= chance + 1e-9,
        "lightweb leaked page identity: {lw_acc}"
    );
}

#[test]
fn corpus_scales_track_paper_statistics() {
    // Sanity tie between the workload generator and the cost model's
    // dataset specs: mean page sizes must agree.
    let spec = CorpusSpec::c4();
    let dataset = lightweb::cost::model::DatasetSpec::c4();
    let pages = spec.generate(2000, 9);
    let mean_kib =
        pages.iter().map(|p| p.body.len() as f64).sum::<f64>() / pages.len() as f64 / 1024.0;
    assert!(
        (mean_kib - dataset.avg_page_kib).abs() < 0.25,
        "generator mean {mean_kib:.2} KiB vs spec {} KiB",
        dataset.avg_page_kib
    );
}
