//! End-to-end telemetry accounting: the process-global registry must
//! reproduce the paper's §5.1 per-request communication claim from real
//! ZLTP sessions, over both the in-memory transport and loopback TCP.
//!
//! The registry is process-global, so this file holds exactly ONE test
//! function and runs its sub-scenarios sequentially against snapshot
//! deltas — two parallel tests in this binary would cross-contaminate
//! each other's counters.

use lightweb::telemetry;
use lightweb::zltp::{mem_pair, ServerConfig, TwoServerZltp, ZltpServer};
use std::net::{TcpListener, TcpStream};

/// §5.1 reports ~13.6 KiB of total communication per request at the
/// d = 22 / 4 KiB operating point.
const PAPER_BYTES_PER_REQUEST: u64 = 13_926;

/// Requests issued per transport scenario.
const REQUESTS: u64 = 2;

fn paper_servers() -> Vec<ZltpServer> {
    (0..2u8)
        .map(|party| {
            let cfg = ServerConfig::paper_microbench(party);
            let server = ZltpServer::new(cfg).unwrap();
            server.publish("c4/page-a", &[0xA5u8; 4096]).unwrap();
            server.publish("c4/page-b", &[0x5Au8; 4096]).unwrap();
            server
        })
        .collect()
}

/// Issue `REQUESTS` private GETs on a connected client and return the
/// client-observed (bytes_sent, bytes_received) over the whole session
/// (hello included). The client is dropped, not closed, so no bytes move
/// after the stats are read — the servers see EOF, which ends a session
/// cleanly.
fn drive_client<S: std::io::Read + std::io::Write>(s0: S, s1: S) -> (u64, u64) {
    let mut client = TwoServerZltp::connect(s0, s1).unwrap();
    for _ in 0..REQUESTS {
        let blob = client.private_get("c4/page-a").unwrap();
        assert_eq!(blob, vec![0xA5u8; 4096]);
    }
    let stats = client.stats();
    (stats.bytes_sent, stats.bytes_received)
}

/// Check one transport scenario's telemetry deltas against the client's
/// own byte accounting and the §5.1 communication number.
fn check_deltas(
    label: &str,
    before: &telemetry::Snapshot,
    after: &telemetry::Snapshot,
    client_sent: u64,
    client_received: u64,
) {
    // Every instrumented FramedConn (client and server side) feeds the
    // same global counters, so the send-side total is the whole wire
    // traffic in both directions: client_sent (client conns) plus
    // client_received (the server conns sent exactly what the client
    // received). Same for the receive side, mirrored.
    let wire_total = client_sent + client_received;
    let sent = after.counter_delta(before, "transport.bytes.sent");
    let recv = after.counter_delta(before, "transport.bytes.recv");
    assert_eq!(
        sent, wire_total,
        "[{label}] telemetry sent vs client accounting"
    );
    assert_eq!(
        recv, wire_total,
        "[{label}] telemetry recv vs client accounting"
    );
    assert_eq!(
        after.counter_delta(before, "transport.frames.sent"),
        after.counter_delta(before, "transport.frames.recv"),
        "[{label}] every frame sent is received"
    );

    // Per-request communication: subtract the session setup (hello both
    // ways on both conns) by measuring marginal cost per GET instead of
    // amortizing — REQUESTS identical GETs make the division exact
    // enough for a band check.
    let per_request = wire_total / REQUESTS;
    // Download floor: two 4 KiB buckets plus 13 bytes of framing each
    // (5-byte header + 8-byte request id).
    let floor = 2 * (4096 + 13);
    assert!(
        per_request >= floor,
        "[{label}] per-request bytes {per_request} below the 2-bucket floor {floor}"
    );
    // Ceiling: the paper's 13.6 KiB plus slack for our framing and the
    // amortized hello. Our DPF keys are more compact than the paper's
    // (~0.3–1.2 KiB up per server vs ~2.7 KiB), so we sit strictly
    // below their number; matching the structure (download-dominated,
    // same order) is the reproduction claim.
    let ceiling = PAPER_BYTES_PER_REQUEST + 2048;
    assert!(
        per_request <= ceiling,
        "[{label}] per-request bytes {per_request} above ceiling {ceiling}"
    );

    // Counters add up: each logical GET touches both servers once.
    assert_eq!(
        after.counter_delta(before, "zltp.server.requests"),
        2 * REQUESTS,
        "[{label}] server request counter"
    );
    assert_eq!(
        after.counter_delta(before, "zltp.server.sessions"),
        2,
        "[{label}] one session per server"
    );
    let hist_count = |snap: &telemetry::Snapshot, name: &str| {
        snap.histograms.get(name).map(|h| h.count).unwrap_or(0)
    };
    assert_eq!(
        hist_count(after, "zltp.server.request.ns") - hist_count(before, "zltp.server.request.ns"),
        2 * REQUESTS,
        "[{label}] request latency histogram count"
    );
    assert!(
        hist_count(after, "pir.scan.ns") >= hist_count(before, "pir.scan.ns") + 2 * REQUESTS,
        "[{label}] every answer runs a scan"
    );
}

#[test]
fn telemetry_reproduces_per_request_communication() {
    let servers = paper_servers();
    let stats_before: Vec<_> = servers.iter().map(|s| s.stats()).collect();

    // --- Scenario 1: in-memory transport ---
    let before = telemetry::registry().snapshot();
    let (c0, s0) = mem_pair();
    let (c1, s1) = mem_pair();
    let handles: Vec<_> = [(0, s0), (1, s1)]
        .into_iter()
        .map(|(i, end)| {
            let server: ZltpServer = servers[i].clone();
            std::thread::spawn(move || server.handle_connection(end).unwrap())
        })
        .collect();
    let (sent, received) = drive_client(c0, c1);
    for h in handles {
        h.join().unwrap();
    }
    let after = telemetry::registry().snapshot();
    check_deltas("mem", &before, &after, sent, received);

    // --- Scenario 2: loopback TCP ---
    let before = telemetry::registry().snapshot();
    let addrs: Vec<_> = servers
        .iter()
        .map(|server| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            server.serve_tcp(listener).unwrap();
            addr
        })
        .collect();
    let (sent, received) = drive_client(
        TcpStream::connect(addrs[0]).unwrap(),
        TcpStream::connect(addrs[1]).unwrap(),
    );
    // The final GetResponse reaching the client proves the servers have
    // consumed (and counted) every request byte, so the deltas are
    // settled even though the connection threads are detached.
    let after = telemetry::registry().snapshot();
    check_deltas("tcp", &before, &after, sent, received);

    // ServerStats and the telemetry registry tell the same story.
    let served: u64 = servers
        .iter()
        .zip(&stats_before)
        .map(|(s, b)| s.stats().requests - b.requests)
        .sum();
    assert_eq!(served, 2 * 2 * REQUESTS, "both scenarios, both servers");

    for s in &servers {
        s.shutdown();
    }
}
