//! Full-stack integration: universe → ZLTP → browser, over the in-memory
//! transport. Covers the complete §3.2 browsing anatomy plus dynamic
//! content, chaining, and access control interacting in one session.

use lightweb::browser::LightwebBrowser;
use lightweb::universe::access::AccessKeyring;
use lightweb::universe::json::Value;
use lightweb::universe::{Universe, UniverseConfig};

fn full_universe() -> (Universe, AccessKeyring) {
    let u = Universe::new(UniverseConfig::small_test("e2e")).unwrap();

    // A news publisher.
    u.register_domain("news.com", "News").unwrap();
    u.publish_code(
        "News",
        "news.com",
        r#"
        route "/" {
            fetch "news.com/front"
            title "News"
            render "{data.0.lead}"
        }
        route "/story/:id" {
            fetch "news.com/story/{id}"
            title "{data.0.headline}"
            render "{data.0.body}"
        }
        default {
            render "404"
        }
        "#,
    )
    .unwrap();
    u.publish_json(
        "News",
        "news.com/front",
        &Value::object([("lead", "Lead story".into())]),
    )
    .unwrap();
    u.publish_json(
        "News",
        "news.com/story/42",
        &Value::object([
            ("headline", "Forty-two".into()),
            ("body", "The answer.".into()),
        ]),
    )
    .unwrap();

    // A personalized weather publisher.
    u.register_domain("wx.org", "Wx").unwrap();
    u.publish_code(
        "Wx",
        "wx.org",
        r#"
        route "/" {
            prompt zip "zip?"
            fetch "wx.org/{store.zip}"
            render "{data.0.t}"
        }
        "#,
    )
    .unwrap();
    u.publish_json("Wx", "wx.org/94110", &Value::object([("t", "fog".into())]))
        .unwrap();

    // A paywalled publisher.
    u.register_domain("paid.net", "Paid").unwrap();
    u.publish_code(
        "Paid",
        "paid.net",
        "route \"/p\" {\n fetch \"paid.net/secret\"\n render \"{data.0}\"\n }",
    )
    .unwrap();
    let ring = AccessKeyring::new();
    u.publish_data(
        "Paid",
        "paid.net/secret",
        &ring.protect("paid.net/secret", b"classified"),
    )
    .unwrap();

    // A long-read publisher exercising chaining.
    u.register_domain("long.io", "Long").unwrap();
    u.publish_code(
        "Long",
        "long.io",
        "route \"/read\" {\n fetch \"long.io/book\"\n render \"{data.0}\"\n }",
    )
    .unwrap();
    u.publish_data(
        "Long",
        "long.io/book",
        "lorem ipsum ".repeat(200).as_bytes(),
    )
    .unwrap();

    (u, ring)
}

fn browser_for(u: &Universe) -> LightwebBrowser<lightweb::zltp::MemDuplex> {
    LightwebBrowser::connect(
        u.connect_code(),
        u.connect_data(),
        u.config().fetches_per_page,
        u.config().max_chain_parts,
    )
    .unwrap()
}

#[test]
fn multi_domain_session_renders_everything() {
    let (u, ring) = full_universe();
    let mut b = browser_for(&u);
    b.set_prompt_handler(|_| "94110".into());
    b.install_pass("paid.net", ring.issue_pass(0));

    assert_eq!(b.browse("news.com/").unwrap().body, "Lead story");
    assert_eq!(b.browse("news.com/story/42").unwrap().body, "The answer.");
    assert_eq!(b.browse("news.com/story/42").unwrap().title, "Forty-two");
    assert_eq!(b.browse("wx.org/").unwrap().body, "fog");
    assert_eq!(b.browse("paid.net/p").unwrap().body, "classified");
    assert_eq!(b.browse("long.io/read").unwrap().body.len(), 2400);
    assert_eq!(b.browse("news.com/missing").unwrap().body, "404");
}

#[test]
fn traffic_shape_is_invariant_across_all_page_kinds() {
    let (u, ring) = full_universe();
    let budget = u.config().fetches_per_page;
    let mut b = browser_for(&u);
    b.set_prompt_handler(|_| "94110".into());
    b.install_pass("paid.net", ring.issue_pass(0));

    for path in [
        "news.com/",
        "news.com/story/42",
        "wx.org/",
        "paid.net/p",
        "long.io/read",
        "news.com/404/deep/path",
    ] {
        b.browse(path).unwrap();
    }
    // Every visit: exactly `budget` data GETs, regardless of page type,
    // chain length, hit/miss, or paywall.
    for v in b.visits() {
        assert_eq!(v.data_fetches, budget, "path {}", v.path);
    }
    // Code fetches: exactly one per distinct domain (4 domains + 0 for the
    // repeat visits).
    let code_total: usize = b.visits().iter().map(|v| v.code_fetches).sum();
    assert_eq!(code_total, 4);
    assert_eq!(b.data_stats().requests, (b.visits().len() * budget) as u64);
}

#[test]
fn byte_counts_are_page_independent() {
    // Two browsers visiting different pages must transfer identical byte
    // counts on the data session.
    let (u, ring) = full_universe();
    let mut b1 = browser_for(&u);
    let mut b2 = browser_for(&u);
    b1.install_pass("paid.net", ring.issue_pass(0));
    b1.browse("news.com/").unwrap();
    b2.browse("news.com/story/42").unwrap();
    assert_eq!(b1.data_stats().bytes_sent, b2.data_stats().bytes_sent);
    assert_eq!(
        b1.data_stats().bytes_received,
        b2.data_stats().bytes_received
    );
}

#[test]
fn storage_survives_across_pages_but_not_domains() {
    let (u, _) = full_universe();
    let mut b = browser_for(&u);
    b.set_prompt_handler(|_| "94110".into());
    b.browse("wx.org/").unwrap();
    b.browse("news.com/").unwrap();
    b.browse("wx.org/").unwrap();
    assert_eq!(b.storage().get("wx.org", "zip"), Some("94110"));
    assert_eq!(
        b.storage().get("news.com", "zip"),
        None,
        "domain separation"
    );
}
