//! Integration over real TCP sockets: the same browsing stack the
//! in-memory tests exercise, but with every ZLTP byte crossing the
//! loopback network — the deployment shape a real CDN would run.

use lightweb::browser::LightwebBrowser;
use lightweb::universe::json::Value;
use lightweb::zltp::{Mode, ModeSet, ServerConfig, TwoServerZltp, ZltpServer};
use std::net::{TcpListener, TcpStream};

/// Stand up a two-server pair on loopback TCP, pre-publish content, and
/// return connect addresses.
fn tcp_pair(
    universe_id: &str,
    blob_len: usize,
    publish: &[(&str, Vec<u8>)],
) -> (std::net::SocketAddr, std::net::SocketAddr, Vec<ZltpServer>) {
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for party in 0..2u8 {
        let mut cfg = ServerConfig::small(universe_id, party);
        cfg.blob_len = blob_len;
        let server = ZltpServer::new(cfg).unwrap();
        for (k, v) in publish {
            server.publish(k, v).unwrap();
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap());
        server.serve_tcp(listener).unwrap();
        servers.push(server);
    }
    (addrs[0], addrs[1], servers)
}

#[test]
fn private_get_over_tcp() {
    let (a0, a1, servers) = tcp_pair(
        "tcp-e2e",
        128,
        &[("k/1", vec![1u8; 128]), ("k/2", vec![2u8; 128])],
    );
    let mut client = TwoServerZltp::connect(
        TcpStream::connect(a0).unwrap(),
        TcpStream::connect(a1).unwrap(),
    )
    .unwrap();
    assert_eq!(client.private_get("k/1").unwrap(), vec![1u8; 128]);
    assert_eq!(client.private_get("k/2").unwrap(), vec![2u8; 128]);
    client.close().unwrap();
    for s in &servers {
        s.shutdown();
    }
}

#[test]
fn concurrent_tcp_clients_are_isolated() {
    let (a0, a1, servers) = tcp_pair(
        "tcp-conc",
        64,
        &[("page/a", vec![0xA; 64]), ("page/b", vec![0xB; 64])],
    );
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = TwoServerZltp::connect(
                    TcpStream::connect(a0).unwrap(),
                    TcpStream::connect(a1).unwrap(),
                )
                .unwrap();
                for _ in 0..5 {
                    let key = if i % 2 == 0 { "page/a" } else { "page/b" };
                    let want = if i % 2 == 0 { 0xA } else { 0xB };
                    assert_eq!(client.private_get(key).unwrap(), vec![want; 64]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total: u64 = servers.iter().map(|s| s.stats().requests).sum();
    assert_eq!(total, 4 * 5 * 2, "each GET hits both servers once");
    for s in &servers {
        s.shutdown();
    }
}

#[test]
fn full_browser_over_tcp() {
    // Code and data universes on four TCP endpoints; the browser's generic
    // stream type means no special-casing.
    let code_script = r#"
        route "/" {
            fetch "tcp-site.com/home"
            title "TCP"
            render "{data.0.msg}"
        }
    "#;
    let code_blob = lightweb::universe::blob::encode_blob(code_script.as_bytes(), 8192).unwrap();
    let home_json = Value::object([("msg", "hello over real sockets".into())]).to_json();
    let home_blob = lightweb::universe::blob::encode_blob(home_json.as_bytes(), 1024).unwrap();

    let (c0, c1, code_servers) = tcp_pair("tcp-code", 8192, &[("tcp-site.com", code_blob)]);
    let (d0, d1, data_servers) = tcp_pair("tcp-data", 1024, &[("tcp-site.com/home", home_blob)]);

    let mut browser = LightwebBrowser::connect(
        (
            TcpStream::connect(c0).unwrap(),
            TcpStream::connect(c1).unwrap(),
        ),
        (
            TcpStream::connect(d0).unwrap(),
            TcpStream::connect(d1).unwrap(),
        ),
        5,
        4,
    )
    .unwrap();
    let page = browser.browse("tcp-site.com/").unwrap();
    assert_eq!(page.body, "hello over real sockets");
    assert_eq!(page.real_fetches + page.dummy_fetches, 5);

    for s in code_servers.iter().chain(&data_servers) {
        s.shutdown();
    }
}

#[test]
fn batching_server_survives_bursts_over_tcp() {
    // Many parallel clients flood a batching server; all answers must be
    // correct (the batcher must not cross wires between requests).
    let mut cfg = ServerConfig::small("burst", 0);
    cfg.blob_len = 64;
    cfg.batch.max_batch = 8;
    cfg.modes = ModeSet::new([Mode::TwoServerPir]);
    let server = ZltpServer::new(cfg).unwrap();
    for i in 0..32 {
        server.publish(&format!("p/{i}"), &[i as u8; 64]).unwrap();
    }
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    server.serve_tcp(listener).unwrap();

    // Raw single sessions (not the two-server wrapper) to drive the batch
    // path directly with full-domain keys.
    let handles: Vec<_> = (0..6)
        .map(|t| {
            std::thread::spawn(move || {
                use lightweb::dpf::gen;
                use lightweb::zltp::ZltpSession;
                let modes = ModeSet::new([Mode::TwoServerPir]);
                let mut session =
                    ZltpSession::connect(TcpStream::connect(addr).unwrap(), &modes).unwrap();
                let params = session.params();
                let map = *session.keyword_map();
                for i in 0..8 {
                    let key_name = format!("p/{}", (t * 8 + i) % 32);
                    let slot = map.slot(key_name.as_bytes());
                    let (k0, k1) = gen(&params, slot);
                    let a0 = session.get_raw(k0.to_bytes().to_vec()).unwrap();
                    let a1 = session.get_raw(k1.to_bytes().to_vec()).unwrap();
                    let blob: Vec<u8> = a0.iter().zip(a1.iter()).map(|(x, y)| x ^ y).collect();
                    assert_eq!(blob, vec![((t * 8 + i) % 32) as u8; 64], "key {key_name}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.requests, 6 * 8 * 2);
    assert!(stats.batches > 0, "batcher never engaged");
    server.shutdown();
}

#[test]
fn sharded_wire_server_matches_monolithic() {
    // Two server pairs over the same content: one monolithic, one running
    // the §5.2 front-end + 8-shard deployment. Wire-level answers must be
    // byte-identical.
    use lightweb::zltp::ServerConfig;
    let pages: Vec<(String, Vec<u8>)> = (0..64)
        .map(|i| (format!("s.com/p/{i}"), vec![i as u8; 256]))
        .collect();

    let make = |party: u8, prefix: u32| {
        let mut cfg = ServerConfig::small("shard-wire", party);
        cfg.blob_len = 256;
        cfg.shard_prefix_bits = prefix;
        let server = lightweb::zltp::ZltpServer::new(cfg).unwrap();
        for (k, v) in &pages {
            server.publish(k, v).unwrap();
        }
        lightweb::zltp::InProcServer::new(server)
    };
    let mono0 = make(0, 0);
    let mono1 = make(1, 0);
    let shard0 = make(0, 3);
    let shard1 = make(1, 3);

    let mut mono = TwoServerZltp::connect(mono0.connect(), mono1.connect()).unwrap();
    let mut sharded = TwoServerZltp::connect(shard0.connect(), shard1.connect()).unwrap();
    for i in [0usize, 17, 63] {
        let key = format!("s.com/p/{i}");
        assert_eq!(
            mono.private_get(&key).unwrap(),
            sharded.private_get(&key).unwrap(),
            "{key}"
        );
        assert_eq!(sharded.private_get(&key).unwrap(), vec![i as u8; 256]);
    }

    // Content updates propagate: the deployment is rebuilt lazily.
    shard0.server().publish("s.com/p/0", &[0xEE; 256]).unwrap();
    shard1.server().publish("s.com/p/0", &[0xEE; 256]).unwrap();
    assert_eq!(sharded.private_get("s.com/p/0").unwrap(), vec![0xEE; 256]);
}
