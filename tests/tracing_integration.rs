//! End-to-end causal tracing over a real TCP deployment.
//!
//! Drives a batched AND front-end-sharded two-server ZLTP session over
//! TCP sockets and asserts that every request produced a complete trace
//! tree: client request → per-hop transport → server request →
//! batch-wait → engine phase → per-shard answer spans, with correct
//! parent/child links and child durations that fit inside the root.
//!
//! The trace collector is process-global, so this file holds a single
//! test function (integration-test binaries are per-file; nothing else
//! shares the collector).

use lightweb_core::{BatchConfig, ServerConfig, TwoServerZltp, ZltpServer};
use lightweb_telemetry::trace::{collector, TraceNode};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

const PAGES: usize = 8;
const GETS: usize = 4;
const BLOB_LEN: usize = 1024;

/// Assert `child` is a direct child of `parent` in both the rendered
/// tree and the raw id links.
fn assert_linked(parent: &TraceNode, child: &TraceNode) {
    assert_eq!(
        child.parent_id, parent.span_id,
        "span {} should hang off {}",
        child.name, parent.name
    );
}

#[test]
fn batched_sharded_tcp_session_produces_complete_trace_trees() {
    collector().reset();

    // Two batching, front-end-sharded servers listening on real sockets.
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for party in 0..2u8 {
        let mut cfg = ServerConfig::small("tracing-int", party);
        cfg.blob_len = BLOB_LEN;
        cfg.shard_prefix_bits = 2;
        cfg.batch = BatchConfig {
            max_batch: 4,
            window: Duration::from_millis(5),
        };
        let server = ZltpServer::new(cfg).unwrap();
        for i in 0..PAGES {
            server
                .publish(&format!("trace/page-{i}"), &[0x40 + i as u8; BLOB_LEN])
                .unwrap();
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap());
        server.serve_tcp(listener).unwrap();
        servers.push(server);
    }

    let mut client = TwoServerZltp::connect(
        TcpStream::connect(addrs[0]).unwrap(),
        TcpStream::connect(addrs[1]).unwrap(),
    )
    .unwrap();
    for i in 0..GETS {
        let blob = client.private_get(&format!("trace/page-{i}")).unwrap();
        assert_eq!(blob, vec![0x40 + i as u8; BLOB_LEN]);
    }
    client.close().unwrap();
    for server in &servers {
        server.shutdown();
    }

    // Every span found its parent: nothing orphaned, nothing pending.
    assert_eq!(collector().orphaned_spans(), 0, "orphan spans recorded");
    assert_eq!(collector().pending_spans(), 0, "spans never finalized");

    let traces: Vec<_> = collector()
        .recent()
        .into_iter()
        .filter(|t| t.root.name == "zltp.client.request")
        .collect();
    assert_eq!(traces.len(), GETS, "one trace per private GET");

    for trace in &traces {
        assert!(trace.is_complete(), "trace has orphan spans");

        // Root: the client request, one transport hop per server.
        let root = &trace.root;
        assert_eq!(root.parent_id, 0, "root span must have no parent");
        let hops: Vec<_> = root.children_named("zltp.client.transport").collect();
        assert_eq!(hops.len(), 2, "a two-server GET makes two wire hops");
        assert_eq!(root.children.len(), 2, "root has only the two hops");

        for hop in &hops {
            assert_linked(root, hop);

            // The wire context crossed the TCP connection: the server's
            // request span is a child of the client's transport span.
            let req = hop
                .child_named("zltp.server.request")
                .expect("server request span crossed the wire");
            assert_linked(hop, req);

            let prepare = req
                .child_named("zltp.server.prepare")
                .expect("prepare phase span");
            assert_linked(req, prepare);
            let wait = req
                .child_named("zltp.server.batch.wait")
                .expect("batch queue-wait span");
            assert_linked(req, wait);
            let answer = req
                .child_named("engine.two_server.answer")
                .expect("engine phase span");
            assert_linked(req, answer);

            // Sharded §5.2 path: one front-end hop plus 2^2 shard scans.
            let fe = answer
                .child_named("zltp.shard.front_end")
                .expect("front-end span");
            assert_linked(answer, fe);
            let shard_answers: Vec<_> = answer.children_named("zltp.shard.answer").collect();
            assert_eq!(shard_answers.len(), 4, "2^shard_prefix_bits shard spans");
            for sa in &shard_answers {
                assert_linked(answer, sa);
            }

            // Phases nest in time: prepare + queue wait + engine work all
            // fit inside the server's request span.
            let phase_sum: u64 = req.children.iter().map(|c| c.duration_ns).sum();
            assert!(
                phase_sum <= req.duration_ns,
                "server phases ({phase_sum} ns) exceed the request span ({} ns)",
                req.duration_ns
            );
        }

        // The two sequential hops fit inside the client's root span.
        let child_sum: u64 = root.children.iter().map(|c| c.duration_ns).sum();
        assert!(
            child_sum <= root.duration_ns,
            "hop durations ({child_sum} ns) exceed the root span ({} ns)",
            root.duration_ns
        );
    }
}
