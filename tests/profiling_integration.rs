//! End-to-end profiling: CPU and allocation attribution across real
//! scan-pool workloads.
//!
//! This binary installs the counting global allocator (a test binary
//! can; the library crates never do) and checks the two invariants the
//! profiler is built on:
//!
//! 1. **No double-counting.** Phase CPU is *self* time — the sum of all
//!    phase attributions can never exceed the process CPU actually
//!    burned, whether the scan pool runs inline (width 1) or fans out
//!    across scoped threads (width 4).
//! 2. **Innermost-phase allocation attribution.** When scopes nest, an
//!    allocation lands on the phase that was innermost when it
//!    happened — the outer phase's numbers exclude the inner's.
//!
//! Profiler state (enable flag, phase table) is process-global, so
//! every test serializes on one mutex and resets the table around its
//! measurement window.

use lightweb_dpf::{gen, DpfParams};
use lightweb_engine::ScanPool;
use lightweb_pir::PirServer;
use lightweb_telemetry::profile::{
    heap_stats, phase_profiles, process_cpu_ns, reset_phases, set_enabled, thread_cpu_ns,
    CountingAlloc, PhaseProfile, Scope,
};
use std::sync::Mutex;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static PROFILE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with profiling enabled and a clean phase table; return its
/// result plus the phase snapshot accumulated during the window.
fn profiled<R>(f: impl FnOnce() -> R) -> (R, Vec<PhaseProfile>) {
    let _guard = PROFILE_LOCK.lock().unwrap();
    set_enabled(true);
    reset_phases();
    let r = f();
    let phases = phase_profiles();
    reset_phases();
    (r, phases)
}

fn phase<'a>(phases: &'a [PhaseProfile], name: &str) -> &'a PhaseProfile {
    phases
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("phase {name:?} missing from {phases:?}"))
}

/// A shard big enough that a scan burns measurable CPU: 2^12 slots at
/// 25% load, 64-byte records.
fn sample_server() -> (PirServer, DpfParams) {
    let params = DpfParams::with_default_termination(12).unwrap();
    let entries: Vec<(u64, Vec<u8>)> = (0..1024u64)
        .map(|i| {
            (
                i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % params.domain_size(),
                vec![(i % 255) as u8; 64],
            )
        })
        .collect::<std::collections::BTreeMap<_, _>>()
        .into_iter()
        .collect();
    let server = PirServer::from_entries(params, 64, entries).unwrap();
    (server, params)
}

#[test]
fn scan_pool_attributes_cpu_to_scan_phases_without_double_counting() {
    let (server, params) = sample_server();
    let (k0, _) = gen(&params, 321);
    let bits = k0.eval_full();
    let reps = 20usize;

    for width in [1usize, 4] {
        let ((cpu_delta, thread_delta), phases) = profiled(|| {
            let pool = ScanPool::new(width);
            let cpu0 = process_cpu_ns().expect("process CPU clock");
            let thread0 = thread_cpu_ns().expect("thread CPU clock");
            for _ in 0..reps {
                std::hint::black_box(pool.scan(&server, &bits).unwrap());
            }
            (
                process_cpu_ns().unwrap() - cpu0,
                thread_cpu_ns().unwrap() - thread0,
            )
        });

        // The scan phase was entered once per partition and did real
        // work — width 1 runs the worker scope inline on the caller
        // thread, width 4 on scoped pool threads; both must attribute.
        let worker = phase(&phases, "engine.pool.scan.worker");
        let expected_enters = width as u64 * reps as u64;
        assert_eq!(
            worker.enters, expected_enters,
            "width {width}: one worker scope per partition"
        );
        assert!(
            worker.cpu_ns > 0,
            "width {width}: scan workers attributed no CPU: {worker:?}"
        );

        // Self-time accounting never double-counts: summing every
        // phase stays within the CPU the process actually burned
        // (plus a little clock-granularity slack).
        let attributed: u64 = phases.iter().map(|p| p.cpu_ns).sum();
        let budget = cpu_delta + cpu_delta / 10 + 1_000_000;
        assert!(
            attributed <= budget,
            "width {width}: attributed {attributed} ns exceeds process CPU {cpu_delta} ns"
        );

        // Width 1 runs everything inline: the caller thread's own CPU
        // clock alone must cover the attributed total.
        if width == 1 {
            let thread_budget = thread_delta + thread_delta / 10 + 1_000_000;
            assert!(
                attributed <= thread_budget,
                "width 1: attributed {attributed} ns exceeds caller-thread CPU {thread_delta} ns"
            );
        }
    }
}

#[test]
fn nested_scopes_attribute_allocations_to_the_innermost_phase() {
    const INNER_BYTES: usize = 1_000_000;
    let before = heap_stats();
    let ((), phases) = profiled(|| {
        let _outer = Scope::enter("proftest.outer");
        std::hint::black_box(vec![1u8; 1_000]);
        {
            let _inner = Scope::enter("proftest.inner");
            std::hint::black_box(vec![2u8; INNER_BYTES]);
        }
        std::hint::black_box(vec![3u8; 2_000]);
    });
    let after = heap_stats();

    let outer = phase(&phases, "proftest.outer");
    let inner = phase(&phases, "proftest.inner");

    // The inner phase owns the big allocation...
    assert!(inner.allocs >= 1, "{inner:?}");
    assert!(
        inner.alloc_bytes >= INNER_BYTES as u64,
        "inner phase missed its allocation: {inner:?}"
    );
    // ...and the outer phase's numbers exclude it: the outer scope made
    // only the two small vecs (plus incidental bookkeeping) while it
    // was innermost.
    assert!(outer.allocs >= 2, "{outer:?}");
    assert!(
        outer.alloc_bytes >= 3_000 && outer.alloc_bytes < INNER_BYTES as u64,
        "outer phase absorbed the inner allocation: {outer:?}"
    );

    // The global ledger saw everything the phases saw.
    let global_delta = after.allocated_bytes - before.allocated_bytes;
    assert!(
        global_delta >= inner.alloc_bytes + outer.alloc_bytes,
        "global heap ledger ({global_delta}) smaller than per-phase attribution"
    );
    assert!(after.allocs > before.allocs);
}

#[test]
fn counting_allocator_balances_alloc_and_free() {
    // Churn through short-lived allocations; everything freed must be
    // counted freed, and the live-bytes gauge must return to (near) its
    // starting point.
    let _guard = PROFILE_LOCK.lock().unwrap();
    let before = heap_stats();
    for i in 0..100usize {
        std::hint::black_box(vec![i as u8; 4096]);
    }
    let after = heap_stats();
    let allocs = after.allocs - before.allocs;
    let frees = after.frees - before.frees;
    assert!(allocs >= 100, "expected >= 100 allocations, saw {allocs}");
    // Every vec was dropped; allow slack for unrelated runtime churn.
    assert!(
        frees + 16 >= allocs,
        "frees ({frees}) lag allocs ({allocs}): leaked accounting"
    );
    assert!(
        after.current_bytes < before.current_bytes + 1_000_000,
        "live bytes did not return to baseline: {before:?} -> {after:?}"
    );
    assert!(after.peak_bytes >= after.current_bytes);
}
