//! Cross-mode integration: the same content served through all three ZLTP
//! modes of operation must yield identical values, with each mode's
//! characteristic cost/communication profile.

use lightweb::zltp::{
    EnclaveClient, InProcServer, LweClientSession, Mode, ModeSet, ServerConfig, TwoServerZltp,
    ZltpServer,
};

const BLOB: usize = 96;

fn server_with(modes: &[Mode], party: u8, n_pages: usize) -> InProcServer {
    let mut cfg = ServerConfig::small("modes-test", party);
    cfg.blob_len = BLOB;
    cfg.modes = ModeSet::new(modes.iter().copied());
    let server = ZltpServer::new(cfg).unwrap();
    for i in 0..n_pages {
        let mut blob = vec![0u8; BLOB];
        blob[..8].copy_from_slice(&(i as u64).to_le_bytes());
        blob[8] = 0xEE;
        server.publish(&format!("site.com/p/{i}"), &blob).unwrap();
    }
    InProcServer::new(server)
}

fn expected(i: usize) -> Vec<u8> {
    let mut blob = vec![0u8; BLOB];
    blob[..8].copy_from_slice(&(i as u64).to_le_bytes());
    blob[8] = 0xEE;
    blob
}

#[test]
fn all_modes_return_identical_content() {
    let n = 16;
    let s0 = server_with(&[Mode::TwoServerPir], 0, n);
    let s1 = server_with(&[Mode::TwoServerPir], 1, n);
    let lwe_srv = server_with(&[Mode::SingleServerLwe], 0, n);
    let enc_srv = server_with(&[Mode::Enclave], 0, n);

    let mut two = TwoServerZltp::connect(s0.connect(), s1.connect()).unwrap();
    let mut lwe = LweClientSession::connect(lwe_srv.connect()).unwrap();
    let mut enc = EnclaveClient::connect(enc_srv.connect()).unwrap();

    for i in [0usize, 7, 15] {
        let key = format!("site.com/p/{i}");
        let want = expected(i);
        assert_eq!(two.private_get(&key).unwrap(), want, "two-server, {key}");
        assert_eq!(lwe.private_get(&key).unwrap().unwrap(), want, "lwe, {key}");
        assert_eq!(
            enc.private_get(&key).unwrap().unwrap(),
            want,
            "enclave, {key}"
        );
    }
}

#[test]
fn absent_keys_behave_per_mode() {
    let n = 4;
    let s0 = server_with(&[Mode::TwoServerPir], 0, n);
    let s1 = server_with(&[Mode::TwoServerPir], 1, n);
    let lwe_srv = server_with(&[Mode::SingleServerLwe], 0, n);
    let enc_srv = server_with(&[Mode::Enclave], 0, n);

    // PIR: zero blob (absence is not signaled — blob encoding handles it).
    let mut two = TwoServerZltp::connect(s0.connect(), s1.connect()).unwrap();
    assert_eq!(two.private_get("site.com/nope").unwrap(), vec![0u8; BLOB]);

    // LWE: presence is public manifest metadata → None.
    let mut lwe = LweClientSession::connect(lwe_srv.connect()).unwrap();
    assert_eq!(lwe.private_get("site.com/nope").unwrap(), None);

    // Enclave: dummy ORAM access, then None.
    let mut enc = EnclaveClient::connect(enc_srv.connect()).unwrap();
    assert_eq!(enc.private_get("site.com/nope").unwrap(), None);
}

#[test]
fn communication_profiles_match_theory() {
    let n = 64;
    let s0 = server_with(&[Mode::TwoServerPir], 0, n);
    let s1 = server_with(&[Mode::TwoServerPir], 1, n);
    let lwe_srv = server_with(&[Mode::SingleServerLwe], 0, n);

    let mut two = TwoServerZltp::connect(s0.connect(), s1.connect()).unwrap();
    two.private_get("site.com/p/1").unwrap();
    let pir_stats = two.stats();

    let mut lwe = LweClientSession::connect(lwe_srv.connect()).unwrap();
    lwe.private_get("site.com/p/1").unwrap();

    // LWE's one-time offline download (hint) dwarfs a PIR query's upload.
    assert!(
        lwe.offline_bytes() as u64 > pir_stats.bytes_sent * 4,
        "hint {} vs pir upload {}",
        lwe.offline_bytes(),
        pir_stats.bytes_sent
    );
}

#[test]
fn updates_propagate_to_every_mode() {
    let n = 4;
    let lwe_srv = server_with(&[Mode::SingleServerLwe], 0, n);
    let enc_srv = server_with(&[Mode::Enclave], 0, n);

    // Republish page 2 with new content on both servers.
    let mut new_blob = vec![0u8; BLOB];
    new_blob[0] = 0x99;
    lwe_srv.server().publish("site.com/p/2", &new_blob).unwrap();
    enc_srv.server().publish("site.com/p/2", &new_blob).unwrap();

    // New sessions observe the update (the LWE hint is rebuilt lazily).
    let mut lwe = LweClientSession::connect(lwe_srv.connect()).unwrap();
    assert_eq!(lwe.private_get("site.com/p/2").unwrap().unwrap(), new_blob);
    let mut enc = EnclaveClient::connect(enc_srv.connect()).unwrap();
    assert_eq!(enc.private_get("site.com/p/2").unwrap().unwrap(), new_blob);
}

#[test]
fn multi_mode_server_negotiates_each_client() {
    // One server offering all three modes serves three differently-capable
    // clients correctly.
    let srv = server_with(
        &[Mode::TwoServerPir, Mode::SingleServerLwe, Mode::Enclave],
        0,
        8,
    );

    let mut lwe = LweClientSession::connect(srv.connect()).unwrap();
    assert_eq!(
        lwe.private_get("site.com/p/3").unwrap().unwrap(),
        expected(3)
    );

    let mut enc = EnclaveClient::connect(srv.connect()).unwrap();
    assert_eq!(
        enc.private_get("site.com/p/3").unwrap().unwrap(),
        expected(3)
    );
}
