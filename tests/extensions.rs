//! Integration tests for the extension features (DESIGN.md X1–X9):
//! tiered universes, cuckoo keyword PIR, recursive ORAM, incremental DPF,
//! and their interaction with the core stack.

use lightweb::dpf::gen_incremental;
use lightweb::oram::RecursivePathOram;
use lightweb::pir::cuckoo::CuckooHasher;
use lightweb::pir::cuckoo_pir::{build_cuckoo_server, cuckoo_private_get};
use lightweb::pir::{PirError, TwoServerClient};
use lightweb::universe::{Tier, TieredCdn};

#[test]
fn tiered_cdn_places_a_mixed_site() {
    let cdn = TieredCdn::new("edge").unwrap();
    cdn.register_domain("mixed.org", "Mixed").unwrap();
    cdn.publish_code("Mixed", "mixed.org", "route \"/\" {\n render \"home\"\n }")
        .unwrap();

    let placements = [
        ("mixed.org/note", 200usize, Tier::Small),
        ("mixed.org/article", 3000, Tier::Medium),
        ("mixed.org/dataset", 12000, Tier::Large),
    ];
    for (path, size, want) in placements {
        let got = cdn.publish_auto("Mixed", path, &vec![7u8; size]).unwrap();
        assert_eq!(got, want, "{path}");
        assert_eq!(cdn.tier_of(path), Some(want));
    }
    let total: usize = cdn.tier_populations().iter().map(|(_, n)| n).sum();
    assert_eq!(total, 3);
}

#[test]
fn cuckoo_pir_serves_a_dense_universe_end_to_end() {
    // 45% load — impossible for the single-hash map, fine for cuckoo.
    let domain_bits = 12u32;
    let hasher = CuckooHasher::new(&[0x77; 16], domain_bits);
    let params = lightweb::dpf::DpfParams::with_default_termination(domain_bits).unwrap();
    let record_len = 96usize;
    let pairs: Vec<(String, Vec<u8>)> = (0..1843usize)
        .map(|i| {
            (
                format!("dense.com/item/{i}"),
                format!("value-{i}").into_bytes(),
            )
        })
        .collect();
    let refs: Vec<(&[u8], &[u8])> = pairs
        .iter()
        .map(|(k, v)| (k.as_bytes(), v.as_slice()))
        .collect();
    let s0 = build_cuckoo_server(&hasher, params, record_len, &refs).unwrap();
    let s1 = s0.clone();
    let client = TwoServerClient::new(params, record_len);

    for (key, value) in pairs.iter().step_by(251) {
        let got = cuckoo_private_get(&hasher, &client, key.as_bytes(), |slot| {
            let q = client.query_slot(slot);
            let a0 = s0.answer(&q.key0)?;
            let a1 = s1.answer(&q.key1)?;
            TwoServerClient::combine(&a0, &a1)
        })
        .unwrap()
        .unwrap_or_else(|| panic!("{key} not found"));
        assert_eq!(&got[..value.len()], &value[..]);
    }

    // Misses stay misses.
    let miss = cuckoo_private_get(
        &hasher,
        &client,
        b"dense.com/item/99999",
        |slot| -> Result<Vec<u8>, PirError> {
            let q = client.query_slot(slot);
            let a0 = s0.answer(&q.key0)?;
            let a1 = s1.answer(&q.key1)?;
            TwoServerClient::combine(&a0, &a1)
        },
    )
    .unwrap();
    assert_eq!(miss, None);
}

#[test]
fn recursive_oram_behaves_like_flat_oram() {
    use lightweb::oram::PathOram;
    let mut flat = PathOram::with_seed(256, 24, [7; 32]).unwrap();
    let mut rec = RecursivePathOram::with_seed(256, 24, [7; 32]).unwrap();
    let mut x = 99u64;
    for i in 0..400u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let addr = x % 256;
        if i % 2 == 0 {
            let data = vec![(x >> 16) as u8; 24];
            flat.write(addr, &data).unwrap();
            rec.write(addr, &data).unwrap();
        } else {
            assert_eq!(
                flat.read(addr).unwrap(),
                rec.read(addr).unwrap(),
                "step {i}"
            );
        }
    }
}

#[test]
fn incremental_dpf_supports_domain_level_billing() {
    // §4 billing via prefixes: treat the top 2 bits of a 6-bit page index
    // as the "domain"; servers tally per-domain membership from combined
    // level-2 evaluations without seeing individual indices.
    let visits: &[u64] = &[3, 9, 9, 17, 40, 41, 63];
    let mut per_domain = [0u32; 4];
    for &v in visits {
        let mut one = vec![0u8; 4];
        one[0] = 1;
        let betas: Vec<Vec<u8>> = (0..6).map(|_| one.clone()).collect();
        let (k0, k1) = gen_incremental(6, v, &betas, 4);
        for d in 0..4u64 {
            let a = k0.eval_prefix(d, 2);
            let b = k1.eval_prefix(d, 2);
            let combined: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            if combined == vec![1, 0, 0, 0] {
                per_domain[d as usize] += 1;
            }
        }
    }
    // 3,9,9 -> domain 0; 17 -> domain 1; 40,41 -> domain 2; 63 -> domain 3.
    assert_eq!(per_domain, [3, 1, 2, 1]);
}
