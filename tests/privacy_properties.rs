//! Statistical privacy smoke tests: empirical checks that what each party
//! *sees* is distributed independently of what the client *asked*. These
//! are not proofs (the schemes' security arguments are cryptographic) but
//! they catch the classic implementation bugs that void them — biased
//! PRGs, non-uniform leaf choice, structured shares.

use lightweb::dpf::{gen, DpfParams};
use lightweb::oram::{audit_trace, SimulatedEnclave};
use lightweb::pir::PirServer;
use lightweb::universe::stats::StatsClient;

/// Fraction of one-bits in a packed bit vector.
fn ones_fraction(bits: &[u8]) -> f64 {
    let ones: u32 = bits.iter().map(|b| b.count_ones()).sum();
    ones as f64 / (bits.len() * 8) as f64
}

#[test]
fn dpf_share_bit_density_is_independent_of_alpha() {
    // A single server's full-domain evaluation must look like coin flips
    // regardless of which point the key hides. Compare densities across
    // extreme alphas over many keys.
    let params = DpfParams::new(12, 3).unwrap();
    let alphas = [0u64, params.domain_size() / 2, params.domain_size() - 1];
    let mut means = Vec::new();
    for &alpha in &alphas {
        let mut total = 0.0;
        let trials = 24;
        for _ in 0..trials {
            let (k0, _) = gen(&params, alpha);
            total += ones_fraction(&k0.eval_full());
        }
        means.push(total / trials as f64);
    }
    for (i, m) in means.iter().enumerate() {
        assert!((0.45..0.55).contains(m), "alpha[{i}] share density {m}");
    }
    let spread = means.iter().cloned().fold(f64::MIN, f64::max)
        - means.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.03, "densities vary with alpha: {means:?}");
}

#[test]
fn pir_answers_look_uniform_regardless_of_slot() {
    // One server's answer is an XOR of a pseudorandom subset of records;
    // its byte distribution must not depend on the queried slot.
    let params = DpfParams::new(10, 3).unwrap();
    // Records with per-byte variety, so the XOR-combined answer has 64
    // quasi-independent byte samples per trial.
    let entries: Vec<(u64, Vec<u8>)> = (0..200u64)
        .map(|i| {
            let rec: Vec<u8> = (0..64u64)
                .map(|j| ((i * 31 + j * 17) % 256) as u8)
                .collect();
            ((i * 5) % (1 << 10), rec)
        })
        .collect::<std::collections::BTreeMap<_, _>>()
        .into_iter()
        .collect();
    let server = PirServer::from_entries(params, 64, entries.clone()).unwrap();

    let mean_byte = |slot: u64| -> f64 {
        let mut total = 0.0;
        for _ in 0..16 {
            let (k0, _) = gen(&params, slot);
            let a = server.answer(&k0).unwrap();
            total += a.iter().map(|&b| b as f64).sum::<f64>() / a.len() as f64;
        }
        total / 16.0
    };
    let occupied = entries[0].0;
    let empty = (0..(1 << 10))
        .find(|s| !entries.iter().any(|(e, _)| e == s))
        .unwrap();
    let m1 = mean_byte(occupied);
    let m2 = mean_byte(empty);
    // Uniform bytes have mean 127.5; allow generous sampling noise.
    assert!(
        (100.0..155.0).contains(&m1),
        "occupied-slot answers skewed: {m1}"
    );
    assert!(
        (100.0..155.0).contains(&m2),
        "empty-slot answers skewed: {m2}"
    );
    assert!(
        (m1 - m2).abs() < 20.0,
        "answer distribution leaks slot occupancy: {m1} vs {m2}"
    );
}

#[test]
fn enclave_traces_from_different_workloads_are_alike() {
    // Two maximally different request sequences (one hot key vs uniform
    // sweep) must produce traces the auditor scores the same way.
    let build = || {
        let mut enc = SimulatedEnclave::new(512, 16).unwrap();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..256u32)
            .map(|i| (format!("k{i}").into_bytes(), vec![i as u8; 16]))
            .collect();
        enc.load(entries.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))
            .unwrap();
        enc
    };

    let mut hot = build();
    hot.enable_trace();
    for _ in 0..256 {
        hot.get(b"k0").unwrap();
    }
    let hot_trace = hot.take_trace().unwrap();

    let mut sweep = build();
    sweep.enable_trace();
    for i in 0..256u32 {
        sweep.get(format!("k{i}").as_bytes()).unwrap();
    }
    let sweep_trace = sweep.take_trace().unwrap();

    let hot_report = audit_trace(&hot_trace, hot.tree_height());
    let sweep_report = audit_trace(&sweep_trace, sweep.tree_height());
    assert!(
        hot_report.passed(),
        "hot workload failed audit: {:?}",
        hot_report.notes
    );
    assert!(
        sweep_report.passed(),
        "sweep workload failed audit: {:?}",
        sweep_report.notes
    );
    // Identical event counts: the trace length is workload-independent.
    assert_eq!(hot_trace.len(), sweep_trace.len());
}

#[test]
fn oram_stash_stays_small_over_long_runs() {
    // Path ORAM's stash bound is the scheme's correctness linchpin; run a
    // long adversarial-ish mix and check the high-water mark.
    use lightweb::oram::PathOram;
    let mut oram = PathOram::with_seed(1024, 16, [9; 32]).unwrap();
    for a in 0..1024u64 {
        oram.write(a, &[a as u8; 16]).unwrap();
    }
    // Skewed + sequential + random-ish phases.
    for i in 0..4000u64 {
        let addr = match i % 3 {
            0 => 7,                       // hot
            1 => i % 1024,                // sweep
            _ => (i * 2654435761) % 1024, // scattered
        };
        oram.read(addr).unwrap();
    }
    assert!(
        oram.max_stash_seen() < 96,
        "stash high-water {} suggests broken eviction",
        oram.max_stash_seen()
    );
}

#[test]
fn stats_shares_are_individually_uniform() {
    // Each coordinate of a single share should be ~uniform u64; check the
    // mean of the top byte across many reports sits near 127.5.
    let client = StatsClient::new(4);
    let mut sum_top = 0f64;
    let n = 400;
    for _ in 0..n {
        let (a, _) = client.report(2);
        for &x in &a {
            sum_top += (x >> 56) as f64;
        }
    }
    let mean = sum_top / (n * 4) as f64;
    assert!(
        (110.0..145.0).contains(&mean),
        "share bytes skewed: mean {mean}"
    );
}

#[test]
fn lwe_query_payloads_look_uniform_for_any_index() {
    use lightweb::pir::lwe::{LweClient, LweParams, LweServer};
    let params = LweParams::insecure_test();
    let records: Vec<Vec<u8>> = (0..64).map(|i| vec![i as u8; 16]).collect();
    let server = LweServer::new(params, 16, records).unwrap();
    let client = LweClient::new(params, server.public_seed(), server.cols(), 16);
    for idx in [0usize, 31, 63] {
        let q = client.query(idx);
        let mean: f64 =
            q.payload.iter().map(|&v| (v >> 24) as f64).sum::<f64>() / q.payload.len() as f64;
        assert!(
            (95.0..160.0).contains(&mean),
            "index {idx} query skewed: {mean}"
        );
    }
}
